"""Container seek index: random access without whole-stream decode.

Serving workloads (and robot-learning dataset loaders) are dominated by
"decode frame *t* now", not whole-clip decode. The seek index is the
container-level metadata that makes that cheap:

* a **display -> coded** mapping, so a display timestamp resolves to a
  container frame position without scanning frame headers;
* one :class:`GopEntry` per closed GOP, recording the anchor I-frame's
  position and the **byte extent** of the GOP's frame records inside the
  serialized container body — the ranges a storage layer must fetch to
  decode any frame of that GOP.

The index is *derived* metadata: :func:`build_seek_index` reconstructs
it from the precise frame headers alone, so a container that never
serialized one (the v0 format), or whose embedded index arrives
damaged, loses nothing but the scan. Consumers therefore treat the
embedded index as a hint, validate it against the headers
(:func:`validate_seek_index`), and rebuild on any inconsistency — a
corrupted index must never change decoded pixels, only the amount of
work needed to produce them.

Serialization is versioned and CRC-guarded: a flipped bit in the index
block is detected and reported as :class:`~repro.errors.BitstreamError`
by :func:`SeekIndex.deserialize`, which container deserialization turns
into "carry no index" rather than a failure (the satellite contract
exercised by :mod:`repro.fuzz`'s ``seek_index`` strategy).
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import BitstreamError

#: Current seek-index format version.
SEEK_INDEX_VERSION = 1

#: Magic prefix of a serialized seek index block.
SEEK_MAGIC = b"SIDX"


def _write_uint(out: io.BytesIO, value: int, size: int) -> None:
    out.write(int(value).to_bytes(size, "big"))


def _read_uint(data: bytes, offset: int, size: int) -> Tuple[int, int]:
    if offset + size > len(data):
        raise BitstreamError("truncated seek index")
    return int.from_bytes(data[offset:offset + size], "big"), offset + size


@dataclass(frozen=True)
class GopEntry:
    """One closed GOP's location inside the serialized container body.

    ``byte_start``/``byte_end`` are offsets into the *v0 container
    body* (the ``RVAP``-magic byte string), covering every frame record
    — header and payload — of the GOP in coded order. ``frame_pos`` is
    the anchor I-frame's position in ``encoded.frames`` (== its coded
    index), and ``frame_count`` the number of coded frames the GOP's
    records span, so ``frames[frame_pos:frame_pos + frame_count]`` is
    exactly the GOP's decode workload.
    """

    anchor_display: int  #: display index of the opening I frame
    frame_pos: int       #: container position of the opening I frame
    frame_count: int     #: coded frames in this GOP's record span
    byte_start: int      #: first byte of the GOP's records in the body
    byte_end: int        #: one past the GOP's last record byte


@dataclass(frozen=True)
class SeekIndex:
    """Display->coded mapping plus per-GOP byte extents."""

    version: int
    #: ``display_to_coded[d]`` is the container position (coded index)
    #: of display frame ``d``.
    display_to_coded: Tuple[int, ...]
    gops: Tuple[GopEntry, ...]

    @property
    def num_frames(self) -> int:
        return len(self.display_to_coded)

    def gop_for_display(self, display: int) -> GopEntry:
        """The GOP whose anchor is the nearest I frame at/before
        ``display``."""
        if not 0 <= display < self.num_frames:
            raise BitstreamError(
                f"display index {display} outside 0..{self.num_frames - 1}")
        chosen: Optional[GopEntry] = None
        for entry in self.gops:
            if entry.anchor_display <= display:
                chosen = entry
            else:
                break
        if chosen is None:
            raise BitstreamError(
                f"seek index has no GOP anchored at/before {display}")
        return chosen

    # -- serialization ----------------------------------------------------

    def serialize(self) -> bytes:
        """Self-delimiting, CRC-guarded index block."""
        body = io.BytesIO()
        _write_uint(body, self.version, 1)
        _write_uint(body, len(self.display_to_coded), 2)
        for coded in self.display_to_coded:
            _write_uint(body, coded, 2)
        _write_uint(body, len(self.gops), 2)
        for entry in self.gops:
            _write_uint(body, entry.anchor_display, 2)
            _write_uint(body, entry.frame_pos, 2)
            _write_uint(body, entry.frame_count, 2)
            _write_uint(body, entry.byte_start, 8)
            _write_uint(body, entry.byte_end, 8)
        payload = body.getvalue()
        out = io.BytesIO()
        out.write(SEEK_MAGIC)
        _write_uint(out, zlib.crc32(payload), 4)
        out.write(payload)
        return out.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "SeekIndex":
        """Parse an index block; any damage raises
        :class:`BitstreamError`."""
        if data[:len(SEEK_MAGIC)] != SEEK_MAGIC:
            raise BitstreamError("not a serialized seek index")
        offset = len(SEEK_MAGIC)
        crc, offset = _read_uint(data, offset, 4)
        payload = data[offset:]
        if zlib.crc32(payload) != crc:
            raise BitstreamError("seek index CRC mismatch")
        offset = 0
        version, offset = _read_uint(payload, offset, 1)
        if version != SEEK_INDEX_VERSION:
            raise BitstreamError(
                f"unsupported seek index version {version}")
        num_frames, offset = _read_uint(payload, offset, 2)
        mapping: List[int] = []
        for _ in range(num_frames):
            coded, offset = _read_uint(payload, offset, 2)
            mapping.append(coded)
        num_gops, offset = _read_uint(payload, offset, 2)
        gops: List[GopEntry] = []
        for _ in range(num_gops):
            anchor_display, offset = _read_uint(payload, offset, 2)
            frame_pos, offset = _read_uint(payload, offset, 2)
            frame_count, offset = _read_uint(payload, offset, 2)
            byte_start, offset = _read_uint(payload, offset, 8)
            byte_end, offset = _read_uint(payload, offset, 8)
            gops.append(GopEntry(
                anchor_display=anchor_display, frame_pos=frame_pos,
                frame_count=frame_count, byte_start=byte_start,
                byte_end=byte_end))
        if offset != len(payload):
            raise BitstreamError(
                f"{len(payload) - offset} trailing bytes after seek index")
        return SeekIndex(version=version,
                         display_to_coded=tuple(mapping),
                         gops=tuple(gops))


def build_seek_index(encoded) -> SeekIndex:
    """Derive the seek index from a container's precise frame headers.

    ``encoded`` is an :class:`~repro.codec.encoded.EncodedVideo` (typed
    loosely to avoid an import cycle). Byte offsets mirror
    ``EncodedVideo.serialize``'s v0 body layout exactly: the fixed
    stream header, then per frame a header record followed by the
    payload bytes.
    """
    from .encoded import EncodedVideo  # cycle guard
    from .types import FrameType

    if not isinstance(encoded, EncodedVideo):
        raise BitstreamError(
            f"cannot index a {type(encoded).__name__}")
    header_bytes = encoded.header.serialized_bits() // 8
    mapping = [0] * len(encoded.frames)
    starts: List[Tuple[int, int, int]] = []  # (display, pos, byte_start)
    offset = header_bytes
    boundaries: List[int] = []
    for position, frame in enumerate(encoded.frames):
        fh = frame.header
        if not 0 <= fh.display_index < len(mapping):
            raise BitstreamError(
                f"frame {position} display index {fh.display_index} "
                f"outside the container")
        mapping[fh.display_index] = position
        if fh.frame_type == FrameType.I:
            starts.append((fh.display_index, position, offset))
        boundaries.append(offset)
        offset += fh.serialized_bits() // 8 + len(frame.payload)
    boundaries.append(offset)
    if not starts or starts[0][1] != 0:
        raise BitstreamError("container does not open with an I frame")
    gops: List[GopEntry] = []
    for which, (display, position, byte_start) in enumerate(starts):
        next_pos = (starts[which + 1][1] if which + 1 < len(starts)
                    else len(encoded.frames))
        gops.append(GopEntry(
            anchor_display=display, frame_pos=position,
            frame_count=next_pos - position, byte_start=byte_start,
            byte_end=boundaries[next_pos]))
    return SeekIndex(version=SEEK_INDEX_VERSION,
                     display_to_coded=tuple(mapping), gops=tuple(gops))


def validate_seek_index(index: SeekIndex, encoded) -> bool:
    """True when ``index`` is consistent with the container's headers.

    Cheap structural cross-check (not a byte-level re-derivation): the
    mapping must cover every display index with the position the frame
    headers record, and every GOP entry must point at an I frame with a
    sane extent. Used by consumers to decide whether an embedded index
    can be trusted or must be rebuilt.
    """
    from .types import FrameType

    if index.num_frames != len(encoded.frames):
        return False
    if len(index.gops) == 0:
        return False
    for display, position in enumerate(index.display_to_coded):
        if not 0 <= position < len(encoded.frames):
            return False
        if encoded.frames[position].header.display_index != display:
            return False
    previous_end = None
    for entry in index.gops:
        if not 0 <= entry.frame_pos < len(encoded.frames):
            return False
        fh = encoded.frames[entry.frame_pos].header
        if fh.frame_type != FrameType.I:
            return False
        if fh.display_index != entry.anchor_display:
            return False
        if entry.frame_count < 1 or entry.byte_end <= entry.byte_start:
            return False
        if entry.frame_pos + entry.frame_count > len(encoded.frames):
            return False
        if previous_end is not None and entry.frame_pos != previous_end:
            return False
        previous_end = entry.frame_pos + entry.frame_count
    return previous_end == len(encoded.frames)
