"""Integer-pel motion estimation and compensation.

Two estimators share the same candidate geometry and produce bitwise
identical answers:

* :class:`MacroblockSearch` — the scalar reference. Per macroblock it
  builds a full absolute-difference tensor over the search window and
  answers SAD queries for any partition rectangle from a 2-D integral
  image. Retained for tests and as the equivalence oracle.
* :class:`FrameMotionSearch` — the vectorized hot path the encoder
  uses. It streams over the displacement window once per (frame,
  reference) pair, reducing whole-frame absolute differences to 4x4
  tile SADs and folding them into every macroblock's per-partition
  best-cost running minimum with one masked matmul per displacement.
  All of H.264's partition shapes are 4x4-tile aligned, so the 41
  encoder rectangles come out of the same tile tensor for free.

Compensation clamps the referenced region into the (edge-padded)
reference frame, which serves two purposes: unrestricted motion vectors
at frame edges during encoding, and crash-free handling of the garbage
motion vectors a corrupted bitstream decodes to.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import EncoderError
from .types import (
    MB_SIZE,
    PARTITION_RECTS,
    QUADRANT_ORIGINS,
    SUBPARTITION_RECTS,
    DependencyRecord,
    MotionVector,
    PartitionType,
    SubPartitionType,
)


def pad_reference(frame: np.ndarray, pad: int) -> np.ndarray:
    """Edge-replicate a reference frame by ``pad`` pixels on all sides."""
    if pad < 1:
        raise EncoderError(f"pad must be >= 1, got {pad}")
    return np.pad(frame, pad, mode="edge")


class MacroblockSearch:
    """SAD oracle for one macroblock against one padded reference.

    Args:
        current_mb: the 16x16 source block being encoded.
        ref_padded: reference frame padded by at least ``search_range``.
        pad: the padding amount used to build ``ref_padded``.
        top, left: pixel coordinates of the MB in the unpadded frame.
        search_range: displacement radius R; candidates span [-R, R]^2.
    """

    def __init__(self, current_mb: np.ndarray, ref_padded: np.ndarray,
                 pad: int, top: int, left: int, search_range: int) -> None:
        if pad < search_range:
            raise EncoderError(
                f"padding {pad} smaller than search range {search_range}"
            )
        self.search_range = search_range
        window_size = 2 * search_range + MB_SIZE
        row0 = top + pad - search_range
        col0 = left + pad - search_range
        window = ref_padded[row0:row0 + window_size,
                            col0:col0 + window_size].astype(np.int32)
        candidates = np.lib.stride_tricks.sliding_window_view(
            window, (MB_SIZE, MB_SIZE))
        diff = np.abs(candidates - current_mb.astype(np.int32))
        # Integral image over the in-block axes: any rectangle SAD for all
        # displacements via 4 gathers.
        integral = np.zeros(
            (diff.shape[0], diff.shape[1], MB_SIZE + 1, MB_SIZE + 1),
            dtype=np.int64,
        )
        integral[:, :, 1:, 1:] = diff.cumsum(axis=2).cumsum(axis=3)
        self._integral = integral

    def sad_grid(self, rect: Tuple[int, int, int, int]) -> np.ndarray:
        """SAD of partition ``rect`` for every displacement, shape (D, D)."""
        oy, ox, height, width = rect
        integral = self._integral
        return (
            integral[:, :, oy + height, ox + width]
            - integral[:, :, oy, ox + width]
            - integral[:, :, oy + height, ox]
            + integral[:, :, oy, ox]
        )

    def best_mv(self, rect: Tuple[int, int, int, int],
                mv_cost_lambda: float) -> Tuple[MotionVector, float]:
        """Lowest-cost displacement for a partition.

        Cost = SAD + lambda * (|dy| + |dx|), the bit-cost bias real
        encoders apply. Returns (motion vector, raw SAD at that vector).
        """
        grid = self.sad_grid(rect)
        radius = self.search_range
        offsets = np.abs(np.arange(-radius, radius + 1))
        penalty = mv_cost_lambda * (offsets[:, None] + offsets[None, :])
        cost = grid + penalty
        flat_index = int(np.argmin(cost))
        dy, dx = np.unravel_index(flat_index, cost.shape)
        mv = MotionVector(int(dy) - radius, int(dx) - radius)
        return mv, float(grid[dy, dx])


def _encoder_rects() -> Tuple[Tuple[int, int, int, int], ...]:
    """Every partition rectangle the encoder's mode decision evaluates.

    16x16/16x8/8x16 at macroblock level plus all four sub-layouts of
    every 8x8 quadrant — 41 rectangles, each aligned to the 4x4 tile
    grid.
    """
    rects: List[Tuple[int, int, int, int]] = []
    for ptype in (PartitionType.P16x16, PartitionType.P16x8,
                  PartitionType.P8x16):
        rects.extend(PARTITION_RECTS[ptype])
    for qy, qx in QUADRANT_ORIGINS:
        for sub in SubPartitionType:
            for oy, ox, height, width in SUBPARTITION_RECTS[sub]:
                rects.append((qy + oy, qx + ox, height, width))
    return tuple(rects)


#: Canonical rectangle set served by :class:`FrameMotionSearch`.
ENCODER_RECTS = _encoder_rects()

#: rect -> column index into the batched SAD tables.
_RECT_COLUMN: Dict[Tuple[int, int, int, int], int] = {
    rect: i for i, rect in enumerate(ENCODER_RECTS)
}


def _rect_tile_mask(rects: Tuple[Tuple[int, int, int, int], ...]
                    ) -> np.ndarray:
    """(16, len(rects)) 0/1 matrix: which 4x4 tiles compose each rect."""
    mask = np.zeros((MB_SIZE, len(rects)), dtype=np.int64)
    for column, (oy, ox, height, width) in enumerate(rects):
        if oy % 4 or ox % 4 or height % 4 or width % 4:
            raise EncoderError(f"rect {(oy, ox, height, width)} is not "
                               f"aligned to the 4x4 tile grid")
        tiles = np.zeros((4, 4), dtype=np.int64)
        tiles[oy // 4:(oy + height) // 4, ox // 4:(ox + width) // 4] = 1
        mask[:, column] = tiles.reshape(MB_SIZE)
    return mask


_ENCODER_RECT_MASK = _rect_tile_mask(ENCODER_RECTS)

#: Summing vector for the 4-wide tile column reduction (BLAS matvec).
_TILE_ONES = np.ones((4, 1), dtype=np.float32)

#: Cache budget for one motion-search chunk's candidate-diff buffers.
_CHUNK_BUDGET_BYTES = 4 << 20


class FrameMotionSearch:
    """Batched full-search SAD oracle for every macroblock of a frame.

    Computes, in one streaming pass over the displacement window, the
    lowest-cost motion vector (cost = SAD + lambda * |mv|_1) and its raw
    SAD for all macroblocks and all :data:`ENCODER_RECTS` partition
    rectangles at once. Answers are bitwise identical to running
    :meth:`MacroblockSearch.best_mv` per macroblock and rectangle —
    including argmin tie-breaking, which both resolve to the first
    candidate in row-major displacement order.

    Args:
        current: the full frame being encoded (uint8, MB-aligned).
        ref_padded: reference frame padded by at least ``search_range``.
        pad: the padding amount used to build ``ref_padded``.
        search_range: displacement radius R; candidates span [-R, R]^2.
        mv_cost_lambda: SAD penalty per pixel of motion-vector deviation.
    """

    def __init__(self, current: np.ndarray, ref_padded: np.ndarray,
                 pad: int, search_range: int,
                 mv_cost_lambda: float) -> None:
        if pad < search_range:
            raise EncoderError(
                f"padding {pad} smaller than search range {search_range}"
            )
        height, width = current.shape
        if height % MB_SIZE or width % MB_SIZE:
            raise EncoderError(
                f"frame {height}x{width} is not macroblock-aligned"
            )
        self.search_range = search_range
        self._mb_cols = width // MB_SIZE
        diameter = 2 * search_range + 1
        self._diameter = diameter
        num_mbs = (height // MB_SIZE) * self._mb_cols
        # float64 mask routes the per-displacement rect reduction through
        # BLAS; tile SADs are <= 16*4080 so every sum is an exactly
        # representable integer and results match the int64 matmul bit
        # for bit.
        mask = _ENCODER_RECT_MASK.astype(np.float64)
        source = current.astype(np.int16)
        tile_rows = height // 4
        tile_cols = width // 4
        mb_rows_count = tile_rows // 4

        num_rects = _ENCODER_RECT_MASK.shape[1]
        offsets = np.abs(np.arange(-search_range, search_range + 1))
        penalty_flat = (mv_cost_lambda * (
            offsets[:, None] + offsets[None, :]).reshape(-1)
        ).astype(np.float64)
        band_full = ref_padded[
            pad - search_range:pad + search_range + height,
            pad - search_range:pad + search_range + width]

        # dy rows are processed in chunks sized to keep the per-chunk
        # diff buffers (int16 + float32 passes, ~6 bytes per candidate
        # pixel) inside a few MB of cache — full batching thrashes at
        # larger frames, a per-row loop pays numpy call overhead 2R+1
        # times.
        row_bytes = 6 * diameter * height * width
        chunk = max(1, min(diameter, _CHUNK_BUDGET_BYTES // row_bytes))

        best_cost = np.full((num_mbs, num_rects), np.inf)
        best_sad = np.zeros((num_mbs, num_rects), dtype=np.float64)
        best_flat = np.zeros((num_mbs, num_rects), dtype=np.int64)
        for start in range(0, diameter, chunk):
            rows = min(chunk, diameter - start)
            dd = rows * diameter
            # All (dy, dx) displacements of these dy rows at once:
            # windows is a strided (rows, D, height, width) view.
            sub = band_full[start:start + rows - 1 + height, :]
            windows = np.lib.stride_tricks.sliding_window_view(
                sub, (height, width))
            diff = np.abs(source[None, None] - windows)
            # 4-wide column sums via a BLAS matvec, then the 4-row sum:
            # per-pixel diffs are <= 255 and tile sums <= 4080, so
            # float32 holds every intermediate exactly and this is ~3x
            # faster than a strided integer reduction over both axes.
            col_sums = (
                diff.reshape(-1, 4).astype(np.float32) @ _TILE_ONES
            ).reshape(dd, tile_rows, 4, tile_cols)
            tiles = col_sums.sum(axis=2, dtype=np.float32)
            mb_tiles = tiles.reshape(
                dd, mb_rows_count, 4, self._mb_cols, 4
            ).transpose(0, 1, 3, 2, 4).reshape(dd, num_mbs, MB_SIZE)
            sads = mb_tiles.astype(np.float64) @ mask
            cost = sads + penalty_flat[start * diameter:
                                       start * diameter + dd, None, None]
            # First-minimum within the chunk (argmin over the flat
            # displacement axis), then strict < across chunks: together
            # that reproduces the scalar path's row-major flat argmin
            # tie-breaking exactly.
            pick = np.argmin(cost, axis=0)
            picked = np.expand_dims(pick, 0)
            chunk_cost = np.take_along_axis(cost, picked, axis=0)[0]
            chunk_sad = np.take_along_axis(sads, picked, axis=0)[0]
            better = chunk_cost < best_cost
            best_cost[better] = chunk_cost[better]
            best_sad[better] = chunk_sad[better]
            best_flat[better] = (start * diameter + pick)[better]
        self._best_sad = best_sad.astype(np.int64)
        self._best_flat = best_flat.astype(np.int32)

    def best(self, mb_row: int, mb_col: int,
             rect: Tuple[int, int, int, int]
             ) -> Tuple[MotionVector, float]:
        """Lowest-cost (motion vector, raw SAD) for one MB's rect."""
        mb = mb_row * self._mb_cols + mb_col
        column = _RECT_COLUMN[rect]
        flat = int(self._best_flat[mb, column])
        radius = self.search_range
        mv = MotionVector(flat // self._diameter - radius,
                          flat % self._diameter - radius)
        return mv, float(self._best_sad[mb, column])

    def mb_table(self, mb_row: int, mb_col: int
                 ) -> List[Tuple[MotionVector, float]]:
        """All of one MB's per-rect winners as plain Python values.

        Returns a list indexed by :data:`ENCODER_RECTS` position of
        (motion vector, raw SAD) pairs — one bulk fetch instead of 41
        array-scalar reads.
        """
        mb = mb_row * self._mb_cols + mb_col
        flats = self._best_flat[mb].tolist()
        sads = self._best_sad[mb].tolist()
        diameter = self._diameter
        radius = self.search_range
        return [
            (MotionVector(flat // diameter - radius,
                          flat % diameter - radius), float(sad))
            for flat, sad in zip(flats, sads)
        ]

    @staticmethod
    def rect_column(rect: Tuple[int, int, int, int]) -> int:
        """Index of ``rect`` in :data:`ENCODER_RECTS` (and
        :meth:`mb_table` output)."""
        return _RECT_COLUMN[rect]


def compensate(ref_padded: np.ndarray, pad: int, top: int, left: int,
               rect: Tuple[int, int, int, int],
               mv: MotionVector) -> np.ndarray:
    """Fetch the motion-compensated prediction for one partition.

    The source rectangle is clamped into the padded reference, so any
    motion vector — including garbage decoded from a corrupted stream —
    yields a valid block.
    """
    oy, ox, height, width = rect
    padded_h, padded_w = ref_padded.shape
    src_row = top + oy + mv.dy + pad
    src_col = left + ox + mv.dx + pad
    src_row = min(max(src_row, 0), padded_h - height)
    src_col = min(max(src_col, 0), padded_w - width)
    return ref_padded[src_row:src_row + height, src_col:src_col + width]


def reference_dependencies(ref_coded_index: int, top: int, left: int,
                           rect: Tuple[int, int, int, int],
                           mv: MotionVector, frame_height: int,
                           frame_width: int,
                           mb_cols: int) -> List[DependencyRecord]:
    """Which reference MBs supply pixels to one compensated partition.

    Coordinates outside the frame (padding) are attributed to the edge
    MBs whose pixels the padding replicates. Returns one record per
    distinct source MB with the pixel count it contributes — the raw
    material for VideoApp's compensation edge weights (Section 4.1).
    """
    oy, ox, height, width = rect
    row_counts = _axis_mb_counts(top + oy + mv.dy, height, frame_height)
    col_counts = _axis_mb_counts(left + ox + mv.dx, width, frame_width)
    deps: List[DependencyRecord] = []
    for mb_row, row_pixels in row_counts:
        base = mb_row * mb_cols
        for mb_col, col_pixels in col_counts:
            deps.append(DependencyRecord(
                source=(ref_coded_index, base + mb_col),
                pixels=row_pixels * col_pixels,
            ))
    return deps


def _axis_mb_counts(start: int, length: int,
                    limit: int) -> List[Tuple[int, int]]:
    """Per-MB pixel counts of one clamped axis of a compensated rect.

    The ``length`` coordinates ``start..start+length-1`` are clamped
    into ``[0, limit)`` (padding replicates the edge pixels) and
    bucketed by :data:`MB_SIZE`. Returns ascending ``(mb index, count)``
    pairs — exactly the nonzero entries a clip/bincount over the same
    coordinates produces, without any small-array numpy overhead (this
    runs once per partition axis, i.e. hundreds of thousands of times
    per campaign).
    """
    below = min(max(-start, 0), length)
    above = min(max(start + length - limit, 0), length - below)
    counts: Dict[int, int] = {}
    if below:
        counts[0] = below
    position = start + below
    stop = start + length - above
    while position < stop:
        mb = position // MB_SIZE
        step = min(stop, (mb + 1) * MB_SIZE) - position
        counts[mb] = counts.get(mb, 0) + step
        position += step
    if above:
        edge = (limit - 1) // MB_SIZE
        counts[edge] = counts.get(edge, 0) + above
    return sorted(counts.items())
