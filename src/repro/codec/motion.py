"""Integer-pel motion estimation and compensation.

The estimator computes, per macroblock, a full absolute-difference
tensor over the search window once, then answers SAD queries for any
partition rectangle and displacement from a 2-D integral image — so
evaluating all of H.264's partition shapes (16x16 down to 4x4) costs
almost nothing beyond the initial tensor.

Compensation clamps the referenced region into the (edge-padded)
reference frame, which serves two purposes: unrestricted motion vectors
at frame edges during encoding, and crash-free handling of the garbage
motion vectors a corrupted bitstream decodes to.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import EncoderError
from .types import MB_SIZE, DependencyRecord, MotionVector


def pad_reference(frame: np.ndarray, pad: int) -> np.ndarray:
    """Edge-replicate a reference frame by ``pad`` pixels on all sides."""
    if pad < 1:
        raise EncoderError(f"pad must be >= 1, got {pad}")
    return np.pad(frame, pad, mode="edge")


class MacroblockSearch:
    """SAD oracle for one macroblock against one padded reference.

    Args:
        current_mb: the 16x16 source block being encoded.
        ref_padded: reference frame padded by at least ``search_range``.
        pad: the padding amount used to build ``ref_padded``.
        top, left: pixel coordinates of the MB in the unpadded frame.
        search_range: displacement radius R; candidates span [-R, R]^2.
    """

    def __init__(self, current_mb: np.ndarray, ref_padded: np.ndarray,
                 pad: int, top: int, left: int, search_range: int) -> None:
        if pad < search_range:
            raise EncoderError(
                f"padding {pad} smaller than search range {search_range}"
            )
        self.search_range = search_range
        window_size = 2 * search_range + MB_SIZE
        row0 = top + pad - search_range
        col0 = left + pad - search_range
        window = ref_padded[row0:row0 + window_size,
                            col0:col0 + window_size].astype(np.int32)
        candidates = np.lib.stride_tricks.sliding_window_view(
            window, (MB_SIZE, MB_SIZE))
        diff = np.abs(candidates - current_mb.astype(np.int32))
        # Integral image over the in-block axes: any rectangle SAD for all
        # displacements via 4 gathers.
        integral = np.zeros(
            (diff.shape[0], diff.shape[1], MB_SIZE + 1, MB_SIZE + 1),
            dtype=np.int64,
        )
        integral[:, :, 1:, 1:] = diff.cumsum(axis=2).cumsum(axis=3)
        self._integral = integral

    def sad_grid(self, rect: Tuple[int, int, int, int]) -> np.ndarray:
        """SAD of partition ``rect`` for every displacement, shape (D, D)."""
        oy, ox, height, width = rect
        integral = self._integral
        return (
            integral[:, :, oy + height, ox + width]
            - integral[:, :, oy, ox + width]
            - integral[:, :, oy + height, ox]
            + integral[:, :, oy, ox]
        )

    def best_mv(self, rect: Tuple[int, int, int, int],
                mv_cost_lambda: float) -> Tuple[MotionVector, float]:
        """Lowest-cost displacement for a partition.

        Cost = SAD + lambda * (|dy| + |dx|), the bit-cost bias real
        encoders apply. Returns (motion vector, raw SAD at that vector).
        """
        grid = self.sad_grid(rect)
        radius = self.search_range
        offsets = np.abs(np.arange(-radius, radius + 1))
        penalty = mv_cost_lambda * (offsets[:, None] + offsets[None, :])
        cost = grid + penalty
        flat_index = int(np.argmin(cost))
        dy, dx = np.unravel_index(flat_index, cost.shape)
        mv = MotionVector(int(dy) - radius, int(dx) - radius)
        return mv, float(grid[dy, dx])


def compensate(ref_padded: np.ndarray, pad: int, top: int, left: int,
               rect: Tuple[int, int, int, int],
               mv: MotionVector) -> np.ndarray:
    """Fetch the motion-compensated prediction for one partition.

    The source rectangle is clamped into the padded reference, so any
    motion vector — including garbage decoded from a corrupted stream —
    yields a valid block.
    """
    oy, ox, height, width = rect
    padded_h, padded_w = ref_padded.shape
    src_row = top + oy + mv.dy + pad
    src_col = left + ox + mv.dx + pad
    src_row = min(max(src_row, 0), padded_h - height)
    src_col = min(max(src_col, 0), padded_w - width)
    return ref_padded[src_row:src_row + height, src_col:src_col + width]


def reference_dependencies(ref_coded_index: int, top: int, left: int,
                           rect: Tuple[int, int, int, int],
                           mv: MotionVector, frame_height: int,
                           frame_width: int,
                           mb_cols: int) -> List[DependencyRecord]:
    """Which reference MBs supply pixels to one compensated partition.

    Coordinates outside the frame (padding) are attributed to the edge
    MBs whose pixels the padding replicates. Returns one record per
    distinct source MB with the pixel count it contributes — the raw
    material for VideoApp's compensation edge weights (Section 4.1).
    """
    oy, ox, height, width = rect
    rows = np.clip(np.arange(top + oy + mv.dy, top + oy + mv.dy + height),
                   0, frame_height - 1)
    cols = np.clip(np.arange(left + ox + mv.dx, left + ox + mv.dx + width),
                   0, frame_width - 1)
    mb_row_counts = np.bincount(rows // MB_SIZE,
                                minlength=frame_height // MB_SIZE)
    mb_col_counts = np.bincount(cols // MB_SIZE,
                                minlength=frame_width // MB_SIZE)
    deps: List[DependencyRecord] = []
    for mb_row in np.nonzero(mb_row_counts)[0]:
        for mb_col in np.nonzero(mb_col_counts)[0]:
            pixels = int(mb_row_counts[mb_row]) * int(mb_col_counts[mb_col])
            deps.append(DependencyRecord(
                source=(ref_coded_index, int(mb_row) * mb_cols + int(mb_col)),
                pixels=pixels,
            ))
    return deps
