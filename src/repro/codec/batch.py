"""Batched multi-clip encoding: the encode farm's codec kernel.

The paper's evaluation is Monte-Carlo campaigns of many *small* encodes
(Section 8 runs whole suites of short clips per operating point), and
profiles show a single encode spends most of its time in per-macroblock
Python — not in numpy. Process fan-out does not help on small hosts
(``BENCH_parallel_scaling.json``), so this module batches *across
clips* instead: N same-geometry clips are stacked on a leading batch
axis and driven through the vectorized kernels in lockstep, one numpy
call per stage per macroblock position instead of one per clip.

What batches (one call for all N clips):

* motion search — :class:`BatchFrameMotionSearch` streams the chunked
  SAD pipeline of :class:`~repro.codec.motion.FrameMotionSearch` with a
  leading clip axis;
* the whole P-frame inter mode decision — partition costs for every
  macroblock of every clip come out of the stacked SAD tables with a
  handful of argmins (the scalar ``_decide_inter`` loop disappears);
* intra mode selection, the 4x4 transform/quantization, coefficient
  block patterns, reconstruction, and the deblocking filter.

What stays per clip: entropy coding, neighbor state, and trace
dependencies — inherently sequential Python that every clip needs
anyway. Because those consume *decisions*, and every batched stage
produces decisions bitwise identical to the scalar encoder's (integer
arithmetic batches exactly; the float stages reuse the exact-in-float
guarantees PR 4 established), the emitted streams and traces are
bitwise identical to per-clip :meth:`Encoder.encode` — enforced by
``tests/codec/test_vectorized_equivalence.py``.

B-frames fall back to the scalar per-macroblock decision (bidirectional
candidates need per-MB compensation) while still batching every other
stage; mixed-geometry inputs and ``REPRO_BATCH_DISABLE=1`` fall back to
the per-clip encoder entirely.

GOP work units: with ``bframes == 0`` every GOP is self-contained, so
:func:`gop_unit_bounds` / :func:`assemble_gop_units` let a scheduler
encode GOP-sized slices of *different* clips in one batch and stitch
the unit streams back into a whole-clip stream that is byte-identical
to encoding the clip in one piece.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EncoderError, GopStructureError
from ..obs import trace as obs_trace
from ..video.frame import MACROBLOCK_SIZE, VideoSequence
from .config import EncoderConfig
from .deblock import deblock_frames
from .encoded import EncodedFrame, EncodedVideo, FrameHeader, VideoHeader
from .encoder import Encoder, slice_bands
from .gop import FramePlan, plan_gop
from .motion import (
    _ENCODER_RECT_MASK,
    _RECT_COLUMN,
    _TILE_ONES,
    _CHUNK_BUDGET_BYTES,
    MB_SIZE,
    MotionVector,
)
from .neighbors import FrameMbState
from .ratecontrol import frame_activity_offsets, frame_qp
from .reconstruct import build_prediction
from .syntax import encode_macroblock, finalize_macroblock
from .transform import (
    MAX_QP,
    MIN_QP,
    reconstruct_residuals_many,
    transform_and_quantize_many,
)
from .types import (
    PARTITION_RECTS,
    QUADRANT_ORIGINS,
    SUBPARTITION_RECTS,
    EncodingTrace,
    FrameTrace,
    FrameType,
    InterPartition,
    IntraMode,
    MacroblockDecision,
    MacroblockMode,
    MacroblockTrace,
    PartitionType,
    PredictionDirection,
    SubPartitionType,
)

#: Environment knob: ``1`` disables batching (per-clip scalar fallback).
BATCH_DISABLE_ENV = "REPRO_BATCH_DISABLE"


def batching_enabled() -> bool:
    """False when ``REPRO_BATCH_DISABLE=1`` forces the per-clip path."""
    return os.environ.get(BATCH_DISABLE_ENV, "").strip() != "1"


class BatchFrameMotionSearch:
    """Stacked :class:`~repro.codec.motion.FrameMotionSearch` for N clips.

    Runs the same chunked streaming pass over the displacement window
    with a leading clip axis: per chunk, one strided window view, one
    abs-diff, one float32 tile reduction, and one float64 masked matmul
    cover every clip at once. All intermediates are exact integers in
    their float dtypes (the PR 4 guarantees are batch-shape
    independent), and the first-minimum-within-chunk / strict-less-than
    cross-chunk merge makes results chunk-size invariant — so the
    per-clip SAD tables are bitwise identical to N separate
    :class:`FrameMotionSearch` passes.
    """

    def __init__(self, currents: np.ndarray, refs_padded: np.ndarray,
                 pad: int, search_range: int,
                 mv_cost_lambda: float) -> None:
        if pad < search_range:
            raise EncoderError(
                f"padding {pad} smaller than search range {search_range}"
            )
        num_clips, height, width = currents.shape
        if height % MB_SIZE or width % MB_SIZE:
            raise EncoderError(
                f"frame {height}x{width} is not macroblock-aligned"
            )
        self.search_range = search_range
        self._mb_cols = width // MB_SIZE
        diameter = 2 * search_range + 1
        self._diameter = diameter
        num_mbs = (height // MB_SIZE) * self._mb_cols
        mask = _ENCODER_RECT_MASK.astype(np.float64)
        source = currents.astype(np.int16)
        tile_rows = height // 4
        tile_cols = width // 4
        mb_rows_count = tile_rows // 4

        num_rects = _ENCODER_RECT_MASK.shape[1]
        offsets = np.abs(np.arange(-search_range, search_range + 1))
        penalty_flat = (mv_cost_lambda * (
            offsets[:, None] + offsets[None, :]).reshape(-1)
        ).astype(np.float64)
        band_full = refs_padded[
            :,
            pad - search_range:pad + search_range + height,
            pad - search_range:pad + search_range + width]

        # The per-clip cache budget, grown with the batch (capped at 4x:
        # measured throughput peaks there and thrashes beyond) so the
        # chunk does not degenerate to single displacement rows at batch
        # 8+. Chunk size never affects results — the strict-< merge is
        # chunk-invariant.
        row_bytes = 6 * num_clips * diameter * height * width
        budget = _CHUNK_BUDGET_BYTES * min(num_clips, 4)
        chunk = max(1, min(diameter, budget // row_bytes))

        best_cost = np.full((num_clips, num_mbs, num_rects), np.inf)
        best_sad = np.zeros((num_clips, num_mbs, num_rects),
                            dtype=np.float64)
        best_flat = np.zeros((num_clips, num_mbs, num_rects),
                             dtype=np.int64)
        for start in range(0, diameter, chunk):
            rows = min(chunk, diameter - start)
            dd = rows * diameter
            sub = band_full[:, start:start + rows - 1 + height, :]
            windows = np.lib.stride_tricks.sliding_window_view(
                sub, (height, width), axis=(1, 2))
            diff = np.abs(source[:, None, None] - windows)
            col_sums = (
                diff.reshape(-1, 4).astype(np.float32) @ _TILE_ONES
            ).reshape(num_clips, dd, tile_rows, 4, tile_cols)
            tiles = col_sums.sum(axis=3, dtype=np.float32)
            mb_tiles = tiles.reshape(
                num_clips, dd, mb_rows_count, 4, self._mb_cols, 4
            ).transpose(0, 1, 2, 4, 3, 5).reshape(
                num_clips, dd, num_mbs, MB_SIZE)
            sads = mb_tiles.astype(np.float64) @ mask
            cost = sads + penalty_flat[start * diameter:
                                       start * diameter + dd][None, :,
                                                              None, None]
            pick = np.argmin(cost, axis=1)
            picked = pick[:, None]
            chunk_cost = np.take_along_axis(cost, picked, axis=1)[:, 0]
            chunk_sad = np.take_along_axis(sads, picked, axis=1)[:, 0]
            better = chunk_cost < best_cost
            best_cost[better] = chunk_cost[better]
            best_sad[better] = chunk_sad[better]
            best_flat[better] = np.broadcast_to(
                start * diameter + pick, best_flat.shape)[better]
        self._best_sad = best_sad.astype(np.int64)
        self._best_flat = best_flat.astype(np.int32)

    def clip_view(self, clip: int) -> "_ClipSearchView":
        """A per-clip adapter duck-typing ``FrameMotionSearch``."""
        return _ClipSearchView(self._best_sad[clip], self._best_flat[clip],
                               self.search_range, self._diameter,
                               self._mb_cols)


class _ClipSearchView:
    """One clip's slice of a batched search, for the scalar decision
    path (B-frames): answers :meth:`mb_table` exactly like
    :class:`~repro.codec.motion.FrameMotionSearch`."""

    def __init__(self, best_sad: np.ndarray, best_flat: np.ndarray,
                 search_range: int, diameter: int, mb_cols: int) -> None:
        self._best_sad = best_sad
        self._best_flat = best_flat
        self.search_range = search_range
        self._diameter = diameter
        self._mb_cols = mb_cols

    def mb_table(self, mb_row: int, mb_col: int
                 ) -> List[Tuple[MotionVector, float]]:
        mb = mb_row * self._mb_cols + mb_col
        flats = self._best_flat[mb].tolist()
        sads = self._best_sad[mb].tolist()
        diameter = self._diameter
        radius = self.search_range
        return [
            (MotionVector(flat // diameter - radius,
                          flat % diameter - radius), float(sad))
            for flat, sad in zip(flats, sads)
        ]


# -- vectorized P-frame inter decision tables ---------------------------------

_P16x16_COL = _RECT_COLUMN[(0, 0, 16, 16)]
_P16x8_COLS = np.array([_RECT_COLUMN[r]
                        for r in PARTITION_RECTS[PartitionType.P16x8]])
_P8x16_COLS = np.array([_RECT_COLUMN[r]
                        for r in PARTITION_RECTS[PartitionType.P8x16]])


def _sub_layout_tables():
    """Padded (quadrant, sub-type, rect) column/validity tables."""
    cols = np.zeros((4, 4, 4), dtype=np.int64)
    valid = np.zeros((4, 4, 4), dtype=np.float64)
    counts = np.zeros((4, 4), dtype=np.float64)
    rects: List[List[List[Tuple[int, int, int, int]]]] = []
    for q, (qy, qx) in enumerate(QUADRANT_ORIGINS):
        by_sub: List[List[Tuple[int, int, int, int]]] = []
        for s, sub in enumerate(SubPartitionType):
            sub_rects = [(qy + oy, qx + ox, h, w)
                         for oy, ox, h, w in SUBPARTITION_RECTS[sub]]
            by_sub.append(sub_rects)
            counts[q, s] = len(sub_rects)
            for r, rect in enumerate(sub_rects):
                cols[q, s, r] = _RECT_COLUMN[rect]
                valid[q, s, r] = 1.0
        rects.append(by_sub)
    return cols, valid, counts, rects


_SUB_COLS, _SUB_VALID, _SUB_COUNTS, _SUB_RECTS = _sub_layout_tables()

#: Candidate order of the scalar decision loop (argmin tie-break order).
_PTYPE_ORDER = (PartitionType.P16x16, PartitionType.P16x8,
                PartitionType.P8x16, PartitionType.P8x8)
_SUBTYPE_ORDER = tuple(SubPartitionType)


class _FrameInterTables:
    """All P-frame inter decisions of a batch, precomputed per frame.

    From the stacked forward SAD tables ``(N, M, 41)`` this derives, in
    a few whole-frame numpy calls, exactly what the scalar
    ``Encoder._decide_inter`` computes per macroblock for
    single-reference frames: the winning partition layout, its cost,
    and the chosen sub-layouts. Candidate evaluation order (P16x16,
    P16x8, P8x16, P8x8; sub-types in enum order) matches the scalar
    strict-less-than scan, and every cost is an exact integer in
    float64 (SAD sums plus penalty products), so argmin reproduces the
    scalar tie-breaking bit for bit.
    """

    def __init__(self, search: BatchFrameMotionSearch,
                 partition_penalty: float) -> None:
        sad = search._best_sad.astype(np.float64)
        pp = partition_penalty
        c16 = sad[..., _P16x16_COL]
        c168 = sad[..., _P16x8_COLS].sum(axis=-1) + pp
        c816 = sad[..., _P8x16_COLS].sum(axis=-1) + pp
        sub_costs = ((sad[..., _SUB_COLS] * _SUB_VALID).sum(axis=-1)
                     + pp * _SUB_COUNTS)          # (N, M, 4, 4)
        sub_pick = np.argmin(sub_costs, axis=-1)  # (N, M, 4)
        sub_best = np.take_along_axis(
            sub_costs, sub_pick[..., None], axis=-1)[..., 0]
        c88 = sub_best.sum(axis=-1) - pp
        candidates = np.stack([c16, c168, c816, c88], axis=-1)
        ptype_pick = np.argmin(candidates, axis=-1)  # (N, M)
        best_cost = np.take_along_axis(
            candidates, ptype_pick[..., None], axis=-1)[..., 0]

        # Plain nested lists: the per-MB winner construction in the
        # lockstep loop indexes these heavily, and Python-level list
        # access beats array scalar reads there.
        self.best_cost: List[List[float]] = best_cost.tolist()
        self._ptype_pick: List[List[int]] = ptype_pick.tolist()
        self._sub_pick: List[List[List[int]]] = sub_pick.tolist()
        self._flats: List[List[List[int]]] = search._best_flat.tolist()
        self._diameter = search._diameter
        self._radius = search.search_range

    def _mv(self, flat: int) -> MotionVector:
        return MotionVector(flat // self._diameter - self._radius,
                            flat % self._diameter - self._radius)

    def decision(self, clip: int, mb: int, qp: int) -> MacroblockDecision:
        """Materialize the winning inter decision (winner only — the
        losing candidates' partition objects are never built)."""
        flats = self._flats[clip][mb]
        ptype = _PTYPE_ORDER[self._ptype_pick[clip][mb]]
        sub_types: Optional[List[SubPartitionType]] = None
        if ptype == PartitionType.P8x8:
            sub_types = []
            partitions = []
            for q, s in enumerate(self._sub_pick[clip][mb]):
                sub_types.append(_SUBTYPE_ORDER[s])
                for rect in _SUB_RECTS[q][s]:
                    partitions.append(InterPartition(
                        rect=rect, mv=self._mv(flats[_RECT_COLUMN[rect]])))
        else:
            partitions = [
                InterPartition(rect=rect,
                               mv=self._mv(flats[_RECT_COLUMN[rect]]))
                for rect in PARTITION_RECTS[ptype]
            ]
        return MacroblockDecision(
            mode=MacroblockMode.INTER, qp=qp, partition_type=ptype,
            sub_types=sub_types, partitions=partitions,
        )


# -- batched intra selection --------------------------------------------------

class _BatchIntraChoice:
    """Intra mode selection for one MB position across all clips.

    Mirrors :func:`~repro.codec.intra.choose_intra_mode` with a leading
    clip axis: border SADs are integer sums, the DC value uses the same
    half-to-even rounding, and the PLANE gradient is the same integer
    shift arithmetic — so modes, SADs, and winner predictions are
    identical per clip. Availability (slice boundary, frame edge) is
    position-dependent only, hence uniform across the batch.
    """

    def __init__(self, current_stack: np.ndarray, recon_stack: np.ndarray,
                 mb_row: int, mb_col: int, min_mb_row: int) -> None:
        num_clips = current_stack.shape[0]
        top = mb_row * MB_SIZE
        left = mb_col * MB_SIZE
        has_above = mb_row > min_mb_row
        has_left = mb_col > 0
        current = current_stack.astype(np.int32)
        sad_flat = np.abs(current - 128).sum(axis=(1, 2), dtype=np.int64)

        above = (recon_stack[:, top - 1, left:left + MB_SIZE]
                 if has_above else None)
        left_col = (recon_stack[:, top:top + MB_SIZE, left - 1]
                    if has_left else None)
        self._above = above
        self._left = left_col

        if above is None and left_col is None:
            dc_values = np.full(num_clips, 128, dtype=np.int64)
            sad_dc = sad_flat
        else:
            totals = np.zeros(num_clips, dtype=np.int64)
            count = 0
            if above is not None:
                totals += above.astype(np.int64).sum(axis=1)
                count += MB_SIZE
            if left_col is not None:
                totals += left_col.astype(np.int64).sum(axis=1)
                count += MB_SIZE
            dc_values = np.rint(totals / count).astype(np.int64)
            sad_dc = np.abs(current - dc_values[:, None, None]).sum(
                axis=(1, 2), dtype=np.int64)
        sad_v = (sad_flat if above is None
                 else np.abs(current - above.astype(np.int32)[:, None, :]
                             ).sum(axis=(1, 2), dtype=np.int64))
        sad_h = (sad_flat if left_col is None
                 else np.abs(current - left_col.astype(np.int32)[:, :, None]
                             ).sum(axis=(1, 2), dtype=np.int64))
        planes: Optional[np.ndarray] = None
        if (above is None or left_col is None
                or mb_row == 0 or mb_col == 0):
            sad_p = sad_flat
        else:
            corner = recon_stack[:, top - 1, left - 1].astype(np.int64)
            above64 = above.astype(np.int64)
            left64 = left_col.astype(np.int64)
            above_ext = np.concatenate([corner[:, None], above64], axis=1)
            left_ext = np.concatenate([corner[:, None], left64], axis=1)
            taps = np.arange(1, 9, dtype=np.int64)
            h_grad = (taps * (above_ext[:, 8 + taps]
                              - above_ext[:, 8 - taps])).sum(axis=1)
            v_grad = (taps * (left_ext[:, 8 + taps]
                              - left_ext[:, 8 - taps])).sum(axis=1)
            slope_x = (5 * h_grad + 32) >> 6
            slope_y = (5 * v_grad + 32) >> 6
            base = 16 * (above64[:, 15] + left64[:, 15])
            xs = np.arange(MB_SIZE, dtype=np.int64) - 7
            plane = (base[:, None, None]
                     + slope_x[:, None, None] * xs[None, None, :]
                     + slope_y[:, None, None] * xs[None, :, None] + 16) >> 5
            planes = np.clip(plane, 0, 255).astype(np.uint8)
            sad_p = np.abs(current - planes.astype(np.int32)).sum(
                axis=(1, 2), dtype=np.int64)
        self._dc_values = dc_values
        self._planes = planes
        stacked = np.stack([sad_dc, sad_v, sad_h, sad_p], axis=1)
        picks = np.argmin(stacked, axis=1)  # first min, MODE_ORDER
        self.modes: List[IntraMode] = [
            (IntraMode.DC, IntraMode.VERTICAL, IntraMode.HORIZONTAL,
             IntraMode.PLANE)[p]
            for p in picks.tolist()
        ]
        self.sads: List[int] = np.take_along_axis(
            stacked, picks[:, None], axis=1)[:, 0].tolist()

    def prediction(self, clip: int, mode: IntraMode) -> np.ndarray:
        """The winner's 16x16 prediction — identical to
        :func:`~repro.codec.intra.predict_intra` for this mode."""
        if mode == IntraMode.VERTICAL:
            if self._above is None:
                return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
            return np.repeat(self._above[clip][np.newaxis, :], MB_SIZE,
                             axis=0)
        if mode == IntraMode.HORIZONTAL:
            if self._left is None:
                return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
            return np.repeat(self._left[clip][:, np.newaxis], MB_SIZE,
                             axis=1)
        if mode == IntraMode.PLANE:
            if self._planes is None:
                return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
            return self._planes[clip]
        return np.full((MB_SIZE, MB_SIZE),
                       np.uint8(self._dc_values[clip]), dtype=np.uint8)


#: 4x4 coefficient-block indices composing each 8x8 quadrant.
_QUADRANT_BLOCKS = Encoder._QUADRANT_BLOCKS


def _coded_block_patterns_many(levels: np.ndarray) -> np.ndarray:
    """(K, 16, 4, 4) levels -> (K, 4) per-quadrant coded flags."""
    block_coded = levels.reshape(levels.shape[0], 16, 16).any(axis=2)
    return block_coded[:, _QUADRANT_BLOCKS].any(axis=2)


class BatchEncoder:
    """Encodes N same-geometry clips in lockstep through the batched
    kernels; streams and traces are bitwise identical to per-clip
    :class:`~repro.codec.encoder.Encoder` output."""

    def __init__(self, config: Optional[EncoderConfig] = None) -> None:
        self.config = config or EncoderConfig()
        self._scalar = Encoder(self.config)
        self._model = self._scalar._model
        self._pad = self.config.search_range

    # -- public API -------------------------------------------------------

    def encode_batch(self, videos: Sequence[VideoSequence]
                     ) -> List[EncodedVideo]:
        """Encode all clips; one :class:`EncodedVideo` per input."""
        encoded, _recons = self.encode_batch_with_recon(videos)
        return encoded

    def encode_batch_with_recon(self, videos: Sequence[VideoSequence]
                                ) -> Tuple[List[EncodedVideo],
                                           List[np.ndarray]]:
        """Encode all clips, also returning each clip's reconstruction.

        The second element holds one ``(frames, H, W) uint8`` array per
        clip — the encoder's closed-loop reconstruction in display
        order, byte-identical to a clean decode of the stream. Callers
        measuring quality get it without paying for a decoder pass.
        """
        if not videos:
            raise EncoderError("cannot encode an empty batch")
        geometries = {(len(v), v.height, v.width) for v in videos}
        if (len(videos) == 1 or len(geometries) > 1
                or not batching_enabled()):
            # Scalar fallback: mixed geometries (the farm layer groups
            # by geometry before calling us), single clips, or the env
            # kill switch.
            encoded = [self._scalar.encode(v) for v in videos]
            from .decoder import Decoder  # local import to avoid a cycle
            recons = [Decoder().decode(e).to_array() for e in encoded]
            return encoded, recons
        if len(videos[0]) == 0:
            raise EncoderError("cannot encode an empty sequence")
        with obs_trace.span("encode.batch", clips=len(videos),
                            frames=len(videos[0]),
                            entropy=self.config.entropy_coder.name):
            return self._encode_sequences(videos)

    # -- batched sequence loop -------------------------------------------

    def _encode_sequences(self, videos: Sequence[VideoSequence]
                          ) -> Tuple[List[EncodedVideo], List[np.ndarray]]:
        config = self.config
        num_clips = len(videos)
        sources = np.stack([video.to_array() for video in videos])
        num_frames = sources.shape[1]
        mb_rows = videos[0].mb_rows
        mb_cols = videos[0].mb_cols
        if config.slices > mb_rows:
            raise EncoderError(
                f"slices ({config.slices}) exceed MB rows ({mb_rows})"
            )
        plans = plan_gop(num_frames, config.gop_size, config.bframes)
        coded_of = {plan.display_index: plan.coded_index for plan in plans}

        traces = [EncodingTrace(mb_rows=mb_rows, mb_cols=mb_cols)
                  for _ in range(num_clips)]
        frames_out: List[List[EncodedFrame]] = [[] for _ in range(num_clips)]
        recon_by_display: Dict[int, np.ndarray] = {}
        padded: Dict[int, np.ndarray] = {}
        for plan in plans:
            with obs_trace.span("encode.frame", coded_index=plan.coded_index,
                                frame_type=plan.frame_type.name,
                                batch=num_clips):
                stages = obs_trace.stage_clock()
                frame_list, trace_list, recon_stack = self._encode_frame(
                    plan, sources, padded, coded_of, mb_rows, mb_cols,
                    stages)
                stages.emit(batch=num_clips)
            for clip in range(num_clips):
                frames_out[clip].append(frame_list[clip])
                traces[clip].frames.append(trace_list[clip])
            recon_by_display[plan.display_index] = recon_stack
            padded[plan.display_index] = np.pad(
                recon_stack, ((0, 0), (self._pad, self._pad),
                              (self._pad, self._pad)), mode="edge")

        encoded: List[EncodedVideo] = []
        recons: List[np.ndarray] = []
        display_order = np.stack(
            [recon_by_display[d] for d in range(num_frames)], axis=1)
        for clip, video in enumerate(videos):
            header = VideoHeader(
                width=video.width, height=video.height,
                num_frames=num_frames, gop_size=config.gop_size,
                bframes=config.bframes, slices=config.slices,
                entropy_coder=config.entropy_coder, crf=config.crf,
                search_range=config.search_range, fps=video.fps,
                deblocking=config.deblocking,
            )
            encoded.append(EncodedVideo(header=header,
                                        frames=frames_out[clip],
                                        trace=traces[clip]))
            recons.append(display_order[clip])
        return encoded, recons

    # -- batched frame loop ----------------------------------------------

    def _encode_frame(self, plan: FramePlan, sources: np.ndarray,
                      padded: Dict[int, np.ndarray],
                      coded_of: Dict[int, int], mb_rows: int, mb_cols: int,
                      stages) -> Tuple[List[EncodedFrame],
                                       List[FrameTrace], np.ndarray]:
        config = self.config
        num_clips = sources.shape[0]
        source_stack = np.ascontiguousarray(
            sources[:, plan.display_index])
        base_qp = frame_qp(config.crf, plan.frame_type)
        references: Dict[PredictionDirection, np.ndarray] = {}
        if plan.ref_forward is not None:
            references[PredictionDirection.FORWARD] = padded[plan.ref_forward]
        if plan.ref_backward is not None:
            references[PredictionDirection.BACKWARD] = \
                padded[plan.ref_backward]
        clip_references = [
            {direction: stack[clip] for direction, stack
             in references.items()}
            for clip in range(num_clips)
        ]
        ref_coded = {
            PredictionDirection.FORWARD:
                coded_of.get(plan.ref_forward, -1),
            PredictionDirection.BACKWARD:
                coded_of.get(plan.ref_backward, -1),
        }
        states = [FrameMbState(mb_rows, mb_cols) for _ in range(num_clips)]
        qp_offset_lists: Optional[List[List[List[int]]]] = None
        if config.adaptive_qp:
            qp_offset_lists = [
                frame_activity_offsets(source_stack[clip]).tolist()
                for clip in range(num_clips)
            ]
        searches: Dict[PredictionDirection, BatchFrameMotionSearch] = {}
        clip_searches: List[Dict[PredictionDirection, _ClipSearchView]] = []
        inter_tables: Optional[_FrameInterTables] = None
        if plan.frame_type != FrameType.I:
            with stages.time("encode.inter"):
                searches = {
                    direction: BatchFrameMotionSearch(
                        source_stack, stack, self._pad,
                        config.search_range, config.mv_cost_lambda)
                    for direction, stack in references.items()
                }
                if plan.frame_type == FrameType.P:
                    # Single reference: the entire per-MB scalar mode
                    # decision collapses into whole-frame numpy.
                    inter_tables = _FrameInterTables(
                        searches[PredictionDirection.FORWARD],
                        config.partition_penalty)
                else:
                    clip_searches = [
                        {direction: search.clip_view(clip)
                         for direction, search in searches.items()}
                        for clip in range(num_clips)
                    ]

        recon_stack = np.zeros_like(source_stack)
        slice_payloads: List[List[bytes]] = [[] for _ in range(num_clips)]
        slice_starts: List[int] = []
        mb_traces: List[List[MacroblockTrace]] = [[] for _ in
                                                  range(num_clips)]
        offset_bits = [0] * num_clips
        for start_row, end_row in slice_bands(mb_rows, config.slices):
            encoders = [self._scalar._new_entropy_encoder()
                        for _ in range(num_clips)]
            for state in states:
                state.start_slice(base_qp)
            slice_starts.append(start_row * mb_cols)
            for mb_row in range(start_row, end_row):
                for mb_col in range(mb_cols):
                    bit_starts = [offset_bits[clip]
                                  + encoders[clip].bits_emitted
                                  for clip in range(num_clips)]
                    decisions, deps_lists = self._encode_macroblocks(
                        plan, source_stack, recon_stack, clip_references,
                        ref_coded, states, encoders, base_qp, mb_row,
                        mb_col, start_row, stages, inter_tables,
                        clip_searches, qp_offset_lists)
                    mb_index = mb_row * mb_cols + mb_col
                    for clip in range(num_clips):
                        mb_traces[clip].append(MacroblockTrace(
                            frame_coded_index=plan.coded_index,
                            mb_index=mb_index,
                            bit_start=bit_starts[clip],
                            bit_end=(offset_bits[clip]
                                     + encoders[clip].bits_emitted),
                            dependencies=deps_lists[clip],
                        ))
            with stages.time("encode.entropy"):
                for clip in range(num_clips):
                    payload = encoders[clip].finish()
                    slice_payloads[clip].append(payload)
                    offset_bits[clip] += 8 * len(payload)

        if config.deblocking:
            with stages.time("encode.deblock"):
                recon_stack = deblock_frames(recon_stack, base_qp)

        frame_list: List[EncodedFrame] = []
        trace_list: List[FrameTrace] = []
        for clip in range(num_clips):
            full_payload = b"".join(slice_payloads[clip])
            header = FrameHeader(
                coded_index=plan.coded_index,
                display_index=plan.display_index,
                frame_type=plan.frame_type,
                base_qp=base_qp,
                ref_forward=plan.ref_forward,
                ref_backward=plan.ref_backward,
                slice_byte_lengths=[len(p) for p in slice_payloads[clip]],
            )
            frame_list.append(EncodedFrame(header=header,
                                           payload=full_payload))
            trace_list.append(FrameTrace(
                coded_index=plan.coded_index,
                display_index=plan.display_index,
                frame_type=plan.frame_type,
                payload_bits=8 * len(full_payload),
                slice_starts=list(slice_starts),
                macroblocks=mb_traces[clip],
            ))
        return frame_list, trace_list, recon_stack

    # -- lockstep macroblock step ----------------------------------------

    def _encode_macroblocks(self, plan: FramePlan, source_stack: np.ndarray,
                            recon_stack: np.ndarray,
                            clip_references: List[Dict],
                            ref_coded: Dict[PredictionDirection, int],
                            states: List[FrameMbState], encoders: List,
                            base_qp: int, mb_row: int, mb_col: int,
                            min_mb_row: int, stages,
                            inter_tables: Optional[_FrameInterTables],
                            clip_searches: List[Dict],
                            qp_offset_lists) -> Tuple[List, List]:
        config = self.config
        num_clips = source_stack.shape[0]
        top = mb_row * MACROBLOCK_SIZE
        left = mb_col * MACROBLOCK_SIZE
        current_stack = source_stack[:, top:top + MACROBLOCK_SIZE,
                                     left:left + MACROBLOCK_SIZE]
        if qp_offset_lists is not None:
            qps = [min(max(base_qp + qp_offset_lists[clip][mb_row][mb_col],
                           MIN_QP), MAX_QP)
                   for clip in range(num_clips)]
        else:
            qps = [base_qp] * num_clips
        pred_mvs = [state.predict_mv(mb_row, mb_col, min_mb_row)
                    for state in states]

        decisions: List[MacroblockDecision] = []
        intra_choice: Optional[_BatchIntraChoice] = None
        if plan.frame_type == FrameType.I:
            with stages.time("encode.intra"):
                intra_choice = _BatchIntraChoice(
                    current_stack, recon_stack, mb_row, mb_col, min_mb_row)
                decisions = [
                    MacroblockDecision(mode=MacroblockMode.INTRA,
                                       qp=qps[clip],
                                       intra_mode=intra_choice.modes[clip])
                    for clip in range(num_clips)
                ]
        elif inter_tables is not None:
            with stages.time("encode.inter"):
                intra_choice = _BatchIntraChoice(
                    current_stack, recon_stack, mb_row, mb_col, min_mb_row)
                mb = mb_row * (source_stack.shape[2] // MACROBLOCK_SIZE) \
                    + mb_col
                intra_penalty = config.intra_penalty
                for clip in range(num_clips):
                    if (intra_choice.sads[clip] + intra_penalty
                            < inter_tables.best_cost[clip][mb]):
                        decisions.append(MacroblockDecision(
                            mode=MacroblockMode.INTRA, qp=qps[clip],
                            intra_mode=intra_choice.modes[clip]))
                    else:
                        decisions.append(
                            inter_tables.decision(clip, mb, qps[clip]))
        else:
            # B-frames: bidirectional candidates need per-MB
            # compensation; reuse the scalar decision (it also runs the
            # intra compete) against this clip's slice of the batched
            # search tables.
            with stages.time("encode.inter"):
                decisions = [
                    self._scalar._decide_inter(
                        plan, current_stack[clip], recon_stack[clip],
                        clip_references[clip], clip_searches[clip],
                        states[clip], mb_row, mb_col, min_mb_row,
                        qps[clip], pred_mvs[clip])
                    for clip in range(num_clips)
                ]

        # Residual coding against the chosen predictions, batched.
        with stages.time("encode.transform"):
            predictions = np.empty_like(current_stack)
            for clip, decision in enumerate(decisions):
                if decision.mode == MacroblockMode.INTRA:
                    if intra_choice is not None:
                        predictions[clip] = intra_choice.prediction(
                            clip, decision.intra_mode)
                    else:
                        predictions[clip] = build_prediction(
                            decision, recon_stack[clip],
                            clip_references[clip], self._pad, mb_row,
                            mb_col, min_mb_row)
                else:
                    predictions[clip] = build_prediction(
                        decision, recon_stack[clip], clip_references[clip],
                        self._pad, mb_row, mb_col, min_mb_row)
            residuals = (current_stack.astype(np.int32)
                         - predictions.astype(np.int32))
            levels = transform_and_quantize_many(
                residuals, [d.qp for d in decisions])
            cbps = _coded_block_patterns_many(levels)
        cbp_rows = cbps.tolist()
        for clip, decision in enumerate(decisions):
            decision.coefficients = levels[clip]
            decision.cbp = tuple(cbp_rows[clip])

        # Skip conversion: inter 16x16, forward, predicted MV, no
        # residual — per clip, like the scalar encoder.
        if plan.frame_type != FrameType.I:
            for clip, decision in enumerate(decisions):
                if (decision.mode == MacroblockMode.INTER
                        and decision.partition_type == PartitionType.P16x16
                        and decision.partitions[0].direction
                        == PredictionDirection.FORWARD
                        and decision.partitions[0].mv == pred_mvs[clip]
                        and not any(decision.cbp)):
                    decision = MacroblockDecision(
                        mode=MacroblockMode.SKIP,
                        qp=states[clip].prev_qp,
                        partition_type=PartitionType.P16x16,
                        partitions=[InterPartition(rect=(0, 0, 16, 16),
                                                   mv=pred_mvs[clip])],
                    )
                    decisions[clip] = decision
                    predictions[clip] = build_prediction(
                        decision, recon_stack[clip], clip_references[clip],
                        self._pad, mb_row, mb_col, min_mb_row)

        with stages.time("encode.entropy"):
            for clip, decision in enumerate(decisions):
                encode_macroblock(encoders[clip], self._model,
                                  states[clip], decision, plan.frame_type,
                                  mb_row, mb_col, min_mb_row)

        # Reconstruction (closed loop), batched over the coded clips.
        with stages.time("encode.transform"):
            recon_mbs = predictions.copy()
            coded = [clip for clip, decision in enumerate(decisions)
                     if decision.coefficients is not None
                     and any(decision.cbp)]
            if coded:
                residual_pixels = reconstruct_residuals_many(
                    np.stack([decisions[clip].coefficients
                              for clip in coded]),
                    [decisions[clip].qp for clip in coded])
                combined = (predictions[coded].astype(np.int32)
                            + residual_pixels)
                recon_mbs[coded] = np.clip(combined, 0, 255).astype(
                    np.uint8)
        recon_stack[:, top:top + MACROBLOCK_SIZE,
                    left:left + MACROBLOCK_SIZE] = recon_mbs

        deps_lists = []
        frame_shape = source_stack.shape[1:]
        for clip, decision in enumerate(decisions):
            finalize_macroblock(states[clip], decision, mb_row, mb_col)
            deps_lists.append(self._scalar._dependencies(
                plan, decision, ref_coded, mb_row, mb_col, min_mb_row,
                frame_shape))
        return decisions, deps_lists


def encode_batch(videos: Sequence[VideoSequence],
                 config: Optional[EncoderConfig] = None
                 ) -> List[EncodedVideo]:
    """Encode N same-geometry clips in one batched pass.

    The module-level convenience entry point; see :class:`BatchEncoder`.
    """
    return BatchEncoder(config).encode_batch(videos)


def encode_batch_with_recon(videos: Sequence[VideoSequence],
                            config: Optional[EncoderConfig] = None
                            ) -> Tuple[List[EncodedVideo],
                                       List[np.ndarray]]:
    """Like :func:`encode_batch`, also returning per-clip
    reconstructions (``(frames, H, W) uint8`` each, display order)."""
    return BatchEncoder(config).encode_batch_with_recon(videos)


# -- GOP work units -----------------------------------------------------------

def gop_unit_bounds(num_frames: int, config: EncoderConfig
                    ) -> List[Tuple[int, int]]:
    """Display-index ranges ``[(start, stop), ...]`` of independent
    GOP work units.

    Only valid for ``bframes == 0``: every GOP then opens with an
    I-frame that resets all prediction and no frame references across
    the boundary, so each unit encodes to exactly the bytes the
    whole-clip encode produces for those frames. With B-frames a GOP's
    trailing B-frames reference the *next* GOP's anchor, so splitting
    is refused.
    """
    if num_frames < 1:
        raise EncoderError(f"num_frames must be >= 1, got {num_frames}")
    if config.bframes != 0:
        raise GopStructureError(
            f"GOP work units require bframes == 0 (B-frames straddle GOP "
            f"boundaries; got bframes={config.bframes}). Encode the clip "
            f"as one whole-clip unit instead — the farm does this "
            f"automatically.")
    gop = config.gop_size
    return [(start, min(start + gop, num_frames))
            for start in range(0, num_frames, gop)]


def assemble_gop_units(unit_encodes: Sequence[EncodedVideo],
                       num_frames: int) -> EncodedVideo:
    """Stitch per-GOP unit streams back into one whole-clip stream.

    ``unit_encodes`` must be the encodes of consecutive
    :func:`gop_unit_bounds` units, in order. Frame payloads are reused
    as-is; headers and traces are re-indexed by each unit's frame
    offset. The result is byte-identical (``serialize()``) to encoding
    the whole clip in one call — asserted by the equivalence tests.
    """
    if not unit_encodes:
        raise EncoderError("cannot assemble an empty unit list")
    first = unit_encodes[0].header
    frames: List[EncodedFrame] = []
    trace = EncodingTrace(mb_rows=first.height // MACROBLOCK_SIZE,
                          mb_cols=first.width // MACROBLOCK_SIZE)
    offset = 0
    for unit in unit_encodes:
        if unit.header.bframes != 0:
            raise EncoderError("GOP units require bframes == 0")
        for frame in unit.frames:
            fh = frame.header
            frames.append(EncodedFrame(
                header=FrameHeader(
                    coded_index=fh.coded_index + offset,
                    display_index=fh.display_index + offset,
                    frame_type=fh.frame_type,
                    base_qp=fh.base_qp,
                    ref_forward=(None if fh.ref_forward is None
                                 else fh.ref_forward + offset),
                    ref_backward=(None if fh.ref_backward is None
                                  else fh.ref_backward + offset),
                    slice_byte_lengths=list(fh.slice_byte_lengths),
                ),
                payload=frame.payload,
            ))
        if unit.trace is not None:
            for frame_trace in unit.trace.frames:
                trace.frames.append(FrameTrace(
                    coded_index=frame_trace.coded_index + offset,
                    display_index=frame_trace.display_index + offset,
                    frame_type=frame_trace.frame_type,
                    payload_bits=frame_trace.payload_bits,
                    slice_starts=list(frame_trace.slice_starts),
                    macroblocks=[
                        MacroblockTrace(
                            frame_coded_index=(mb.frame_coded_index
                                               + offset),
                            mb_index=mb.mb_index,
                            bit_start=mb.bit_start,
                            bit_end=mb.bit_end,
                            dependencies=[
                                type(dep)(
                                    source=(dep.source[0] + offset,
                                            dep.source[1]),
                                    pixels=dep.pixels)
                                for dep in mb.dependencies
                            ],
                        )
                        for mb in frame_trace.macroblocks
                    ],
                ))
        offset += len(unit.frames)
    if offset != num_frames:
        raise EncoderError(
            f"units cover {offset} frames, expected {num_frames}")
    header = VideoHeader(
        width=first.width, height=first.height, num_frames=num_frames,
        gop_size=first.gop_size, bframes=first.bframes,
        slices=first.slices, entropy_coder=first.entropy_coder,
        crf=first.crf, search_range=first.search_range, fps=first.fps,
        deblocking=first.deblocking,
    )
    has_traces = all(unit.trace is not None for unit in unit_encodes)
    return EncodedVideo(header=header, frames=frames,
                        trace=trace if has_traces else None)
