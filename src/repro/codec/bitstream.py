"""Bit-granular stream writer/reader.

Used directly by the CAVLC entropy coder and by frame-header
serialization; the CABAC range coder produces bytes on its own and only
uses these helpers for framing.

The reader is intentionally forgiving: reading past the end of the
buffer yields zero bits forever. Under approximate storage the payload
may be corrupted in ways that desynchronize the decoder, and the paper's
methodology decodes such streams best-effort rather than failing.
"""

from __future__ import annotations

from ..errors import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending = 0  # bits currently held in the accumulator

    @property
    def bit_length(self) -> int:
        """Total bits written so far."""
        return 8 * len(self._buffer) + self._pending

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._pending += 1
        if self._pending == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._pending = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, most significant first."""
        if count < 0:
            raise BitstreamError(f"negative bit count {count}")
        if value < 0 or (count < value.bit_length()):
            raise BitstreamError(
                f"value {value} does not fit in {count} bits"
            )
        accumulator = (self._accumulator << count) | value
        pending = self._pending + count
        while pending >= 8:
            pending -= 8
            self._buffer.append((accumulator >> pending) & 0xFF)
        self._accumulator = accumulator & ((1 << pending) - 1)
        self._pending = pending

    def getvalue(self) -> bytes:
        """Finish the stream, zero-padding the final partial byte."""
        buffer = bytearray(self._buffer)
        if self._pending:
            buffer.append(self._accumulator << (8 - self._pending))
        return bytes(buffer)


class BitReader:
    """Reads bits MSB-first; exhausted input reads as zeros."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bit_position(self) -> int:
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= 8 * len(self._data)

    def read_bit(self) -> int:
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            self._pos += 1
            return 0
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise BitstreamError(f"negative bit count {count}")
        if count == 0:
            return 0
        data = self._data
        total_bits = 8 * len(data)
        pos = self._pos
        self._pos = pos + count
        if pos >= total_bits:
            return 0
        end = min(pos + count, total_bits)
        first_byte = pos >> 3
        last_byte = (end - 1) >> 3
        chunk = int.from_bytes(data[first_byte:last_byte + 1], "big")
        bits_in_chunk = 8 * (last_byte - first_byte + 1)
        chunk >>= bits_in_chunk - (end - (first_byte << 3))
        chunk &= (1 << (end - pos)) - 1
        # Bits past the end of the buffer read as zeros.
        return chunk << (count - (end - pos))

    def read_byte(self) -> int:
        """Read 8 bits as one byte value (zeros past the end)."""
        return self.read_bits(8)
