"""H.264-like video codec substrate.

A from-scratch encoder/decoder with the structural properties the
paper's analysis depends on: I/P/B frames, macroblock partitions,
intra/inter prediction, 4x4 integer transform + quantization, predictive
metadata coding, and two entropy backends (CABAC-style adaptive
arithmetic coding and CAVLC-style static VLC). The encoder emits the
per-macroblock bit ranges and pixel dependencies VideoApp consumes.
"""

from .config import (
    CRF_HIGH_QUALITY,
    CRF_STANDARD_QUALITY,
    CRF_VERY_HIGH_QUALITY,
    EncoderConfig,
    EntropyCoder,
)
from .decoder import DamageMap, DamageRanges, Decoder, dependency_closure
from .encoded import EncodedFrame, EncodedVideo, FrameHeader, VideoHeader
from .encoder import Encoder, slice_bands
from .gop import FramePlan, coded_to_display_order, plan_gop
from .seek import (
    SEEK_INDEX_VERSION,
    GopEntry,
    SeekIndex,
    build_seek_index,
    validate_seek_index,
)
from .types import (
    DependencyRecord,
    EncodingTrace,
    FrameTrace,
    FrameType,
    IntraMode,
    MacroblockMode,
    MacroblockTrace,
    MotionVector,
    PartitionType,
    PredictionDirection,
    SubPartitionType,
)

__all__ = [
    "CRF_HIGH_QUALITY",
    "CRF_STANDARD_QUALITY",
    "CRF_VERY_HIGH_QUALITY",
    "DamageMap",
    "DamageRanges",
    "Decoder",
    "DependencyRecord",
    "EncodedFrame",
    "EncodedVideo",
    "Encoder",
    "EncoderConfig",
    "EncodingTrace",
    "EntropyCoder",
    "FrameHeader",
    "FramePlan",
    "FrameTrace",
    "FrameType",
    "GopEntry",
    "IntraMode",
    "MacroblockMode",
    "MacroblockTrace",
    "MotionVector",
    "PartitionType",
    "PredictionDirection",
    "SEEK_INDEX_VERSION",
    "SeekIndex",
    "SubPartitionType",
    "VideoHeader",
    "build_seek_index",
    "coded_to_display_order",
    "dependency_closure",
    "plan_gop",
    "slice_bands",
    "validate_seek_index",
]
