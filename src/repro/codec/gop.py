"""Group-of-pictures planning: frame types, references, coded order.

I-frames are periodic checkpoints (``gop_size`` in display frames) that
reset all prediction; P-frames reference the previous anchor; B-frames
sit between two anchors and reference both. B-frames are never used as
references (the H.264 option the paper's Section 8 discusses), so they
are leaves of the dependency graph.

Coded order interleaves each anchor before the B-frames that reference
it, exactly as a real encoder emits them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import EncoderError
from .types import FrameType


@dataclass(frozen=True)
class FramePlan:
    """Planned identity of one coded frame."""

    coded_index: int
    display_index: int
    frame_type: FrameType
    #: Display index of the forward (earlier-anchor) reference, if any.
    ref_forward: Optional[int] = None
    #: Display index of the backward (later-anchor) reference, if any.
    ref_backward: Optional[int] = None


def _anchor_positions(num_frames: int, gop_size: int,
                      bframes: int) -> List[int]:
    positions = [0]
    pos = 0
    while pos < num_frames - 1:
        next_i = ((pos // gop_size) + 1) * gop_size
        pos = min(pos + bframes + 1, next_i, num_frames - 1)
        positions.append(pos)
    return positions


def plan_gop(num_frames: int, gop_size: int, bframes: int) -> List[FramePlan]:
    """Plan all frames of a video, returned in coded order."""
    if num_frames < 1:
        raise EncoderError(f"num_frames must be >= 1, got {num_frames}")
    if gop_size < 1:
        raise EncoderError(f"gop_size must be >= 1, got {gop_size}")
    if bframes < 0:
        raise EncoderError(f"bframes must be >= 0, got {bframes}")

    anchors = _anchor_positions(num_frames, gop_size, bframes)
    plans: List[FramePlan] = []
    coded = 0
    previous_anchor: Optional[int] = None
    for anchor in anchors:
        if anchor % gop_size == 0:
            plans.append(FramePlan(coded, anchor, FrameType.I))
        else:
            plans.append(FramePlan(coded, anchor, FrameType.P,
                                   ref_forward=previous_anchor))
        coded += 1
        if previous_anchor is not None:
            for display in range(previous_anchor + 1, anchor):
                plans.append(FramePlan(coded, display, FrameType.B,
                                       ref_forward=previous_anchor,
                                       ref_backward=anchor))
                coded += 1
        previous_anchor = anchor
    if len(plans) != num_frames:
        raise EncoderError(
            f"GOP planning produced {len(plans)} frames for {num_frames}"
        )
    return plans


def coded_to_display_order(plans: List[FramePlan]) -> List[int]:
    """``result[display_index] = coded_index`` mapping."""
    mapping = [0] * len(plans)
    for plan in plans:
        mapping[plan.display_index] = plan.coded_index
    return mapping
