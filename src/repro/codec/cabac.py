"""Context-adaptive binary arithmetic coding (CABAC-style).

A carry-aware binary range coder with per-context adaptive probabilities,
structurally equivalent to H.264's CABAC: syntax bins are coded under
adaptive contexts, equiprobable bins take a bypass path, and the coder
state is reset at every slice.

The probability estimator is the classic 11-bit shift-register update
(as used by LZMA's range coder) rather than H.264's 64-state table; both
adapt geometrically and both exhibit the error behaviour the paper
studies: a single flipped payload bit desynchronizes the decoder and
corrupts the adaptive contexts for the remainder of the slice.

Error hardening: the decoder reads zero bytes past the end of the
payload and clamps all decoded integers, so corrupted streams decode to
garbage — never to a crash or an unbounded loop.
"""

from __future__ import annotations

from typing import List

from ..errors import BitstreamError
from .entropy import (
    MAX_EG_PREFIX,
    ContextGroup,
    EntropyDecoder,
    EntropyEncoder,
)

_PROB_BITS = 11
_PROB_ONE = 1 << _PROB_BITS          # 2048
_PROB_INIT = _PROB_ONE // 2          # p(0) = 0.5 initially
_MOVE_BITS = 5                       # adaptation rate
_TOP = 1 << 24
_MASK32 = 0xFFFFFFFF


class CabacEncoder(EntropyEncoder):
    """Binary range encoder with adaptive contexts."""

    def __init__(self, num_contexts: int) -> None:
        self._probs: List[int] = [_PROB_INIT] * num_contexts
        self._low = 0
        self._range = _MASK32
        self._cache = 0
        self._cache_size = 1
        self._out = bytearray()
        self._finished = False

    # -- range coder core ----------------------------------------------

    def _shift_low(self) -> None:
        if self._low < 0xFF000000 or self._low > _MASK32:
            carry = self._low >> 32
            self._out.append((self._cache + carry) & 0xFF)
            for _ in range(self._cache_size - 1):
                self._out.append((0xFF + carry) & 0xFF)
            self._cache = (self._low >> 24) & 0xFF
            self._cache_size = 0
        self._cache_size += 1
        self._low = (self._low << 8) & _MASK32

    def _encode_context_bin(self, bit: int, ctx: int) -> None:
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if bit == 0:
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        else:
            self._low += bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        while self._range < _TOP:
            self._shift_low()
            self._range = (self._range << 8) & _MASK32

    def encode_bypass(self, bit: int) -> None:
        self._range >>= 1
        if bit:
            self._low += self._range
        while self._range < _TOP:
            self._shift_low()
            self._range = (self._range << 8) & _MASK32

    def encode_bypass_bits(self, value: int, count: int) -> None:
        # Same per-bit range-coder steps as encode_bypass, run in one
        # call to amortize Python dispatch over whole bin strings.
        for shift in range(count - 1, -1, -1):
            self._range >>= 1
            if (value >> shift) & 1:
                self._low += self._range
            while self._range < _TOP:
                self._shift_low()
                self._range = (self._range << 8) & _MASK32

    # -- EntropyEncoder interface ---------------------------------------

    def encode_flag(self, value: bool, group: ContextGroup,
                    variant: int = 0) -> None:
        # Single context bin, inlined: flags are the most frequent symbol
        # (skip / intra / cbp / sig) and the extra dispatch through
        # _encode_context_bin is measurable at batch-encode scale.
        ctx = group.first_bin_context(variant)
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if value:
            self._low += bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        else:
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        while self._range < _TOP:
            self._shift_low()
            self._range = (self._range << 8) & _MASK32

    def encode_uint(self, value: int, group: ContextGroup,
                    variant: int = 0) -> None:
        """Specialized TU + EG0 encoder: same bins as the base-class
        implementation, emitted by one loop over local coder state.

        Entropy coding is the one per-clip stage the batch encoder
        cannot turn into numpy calls, and the generic path pays two-plus
        method calls per bin. Keeping ``low``/``range``/the byte cache
        in locals for the whole symbol cuts that to plain integer ops;
        the emitted stream is bit-for-bit identical (asserted by the
        CABAC equivalence tests against the base-class path).
        """
        if value < 0:
            raise BitstreamError(f"encode_uint got negative value {value}")
        if value > group.max_value:
            raise BitstreamError(
                f"value {value} exceeds group max {group.max_value}"
            )
        ladder = group.unary_ladder(variant)
        tu_cap = group.tu_cap
        probs = self._probs
        low = self._low
        rng = self._range
        cache = self._cache
        cache_size = self._cache_size
        out = self._out

        prefix = value if value < tu_cap else tu_cap
        for position in range(prefix):
            ctx = ladder[position]
            prob = probs[ctx]
            bound = (rng >> _PROB_BITS) * prob
            low += bound
            rng -= bound
            probs[ctx] = prob - (prob >> _MOVE_BITS)
            while rng < _TOP:
                if low < 0xFF000000 or low > _MASK32:
                    carry = low >> 32
                    out.append((cache + carry) & 0xFF)
                    for _ in range(cache_size - 1):
                        out.append((0xFF + carry) & 0xFF)
                    cache = (low >> 24) & 0xFF
                    cache_size = 0
                cache_size += 1
                low = (low << 8) & _MASK32
                rng = (rng << 8) & _MASK32
        if value < tu_cap:
            # Terminating zero bin of the truncated-unary prefix.
            ctx = ladder[value]
            prob = probs[ctx]
            bound = (rng >> _PROB_BITS) * prob
            rng = bound
            probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
            while rng < _TOP:
                if low < 0xFF000000 or low > _MASK32:
                    carry = low >> 32
                    out.append((cache + carry) & 0xFF)
                    for _ in range(cache_size - 1):
                        out.append((0xFF + carry) & 0xFF)
                    cache = (low >> 24) & 0xFF
                    cache_size = 0
                cache_size += 1
                low = (low << 8) & _MASK32
                rng = (rng << 8) & _MASK32
        else:
            # EG0 bypass suffix: ``length`` ones, a zero, ``length``
            # suffix bits — the exact bulk bin string of
            # ``_encode_eg0_bypass``.
            shifted = value - tu_cap + 1
            length = shifted.bit_length() - 1
            if length > MAX_EG_PREFIX:
                raise BitstreamError(
                    f"value {value - tu_cap} too large for EG0 suffix")
            pattern = ((((1 << length) - 1) << 1) << length) \
                | (shifted - (1 << length))
            for shift in range(2 * length, -1, -1):
                rng >>= 1
                if (pattern >> shift) & 1:
                    low += rng
                while rng < _TOP:
                    if low < 0xFF000000 or low > _MASK32:
                        carry = low >> 32
                        out.append((cache + carry) & 0xFF)
                        for _ in range(cache_size - 1):
                            out.append((0xFF + carry) & 0xFF)
                        cache = (low >> 24) & 0xFF
                        cache_size = 0
                    cache_size += 1
                    low = (low << 8) & _MASK32
                    rng = (rng << 8) & _MASK32
        self._low = low
        self._range = rng
        self._cache = cache
        self._cache_size = cache_size

    def encode_bins(self, ops) -> None:
        """Batched mirror of the base-class ``encode_bins``.

        One loop over pre-planned bins with the whole coder state in
        locals; the bin arithmetic is exactly ``_encode_context_bin`` /
        ``encode_bypass``, so the stream is bit-for-bit identical to
        dispatching each bin through those methods.
        """
        probs = self._probs
        low = self._low
        rng = self._range
        cache = self._cache
        cache_size = self._cache_size
        out = self._out
        # Module constants as locals: this loop runs once per bin and
        # global loads are measurable at batch-encode scale.
        prob_bits = _PROB_BITS
        move_bits = _MOVE_BITS
        prob_one = _PROB_ONE
        top = _TOP
        mask32 = _MASK32
        for op in ops:
            if op >= 0:
                ctx = op >> 1
                prob = probs[ctx]
                bound = (rng >> prob_bits) * prob
                if op & 1:
                    low += bound
                    rng -= bound
                    probs[ctx] = prob - (prob >> move_bits)
                else:
                    rng = bound
                    probs[ctx] = prob + ((prob_one - prob) >> move_bits)
            else:
                rng >>= 1
                if op != -1:
                    low += rng
            while rng < top:
                if low < 0xFF000000 or low > mask32:
                    carry = low >> 32
                    out.append((cache + carry) & 0xFF)
                    for _ in range(cache_size - 1):
                        out.append((0xFF + carry) & 0xFF)
                    cache = (low >> 24) & 0xFF
                    cache_size = 0
                cache_size += 1
                low = (low << 8) & mask32
                rng = (rng << 8) & mask32
        self._low = low
        self._range = rng
        self._cache = cache
        self._cache_size = cache_size

    @property
    def bits_emitted(self) -> int:
        # The range coder buffers up to cache_size + 4 bytes internally;
        # reported positions therefore lag the bins by a few bytes, which
        # only blurs MB bit-range attribution, never stream correctness.
        return 8 * len(self._out)

    def finish(self) -> bytes:
        if not self._finished:
            for _ in range(5):
                self._shift_low()
            self._finished = True
        return bytes(self._out)


class CabacDecoder(EntropyDecoder):
    """Binary range decoder mirroring :class:`CabacEncoder`."""

    def __init__(self, data: bytes, num_contexts: int) -> None:
        self._data = data
        self._pos = 0
        self._probs: List[int] = [_PROB_INIT] * num_contexts
        self._range = _MASK32
        self._code = 0
        # The first byte is the encoder's spurious initial cache byte (0
        # for well-formed streams); masking keeps corrupted streams sane.
        for _ in range(5):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32

    @property
    def bits_consumed(self) -> int:
        # The range register reads ahead (5 bytes at init, then byte by
        # byte), so this over-reports actual consumption by up to a few
        # bytes — a conservative bound for concealment salvage.
        return 8 * self._pos

    def _next_byte(self) -> int:
        if self._pos >= len(self._data):
            self._pos += 1
            return 0
        byte = self._data[self._pos]
        self._pos += 1
        return byte

    def _decode_context_bin(self, ctx: int) -> int:
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if self._code < bound:
            bit = 0
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        else:
            bit = 1
            self._code -= bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        while self._range < _TOP:
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._range = (self._range << 8) & _MASK32
        return bit

    def decode_bypass(self) -> int:
        self._range >>= 1
        if self._code >= self._range:
            self._code -= self._range
            bit = 1
        else:
            bit = 0
        while self._range < _TOP:
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._range = (self._range << 8) & _MASK32
        return bit

    def decode_bypass_bits(self, count: int) -> int:
        # Bulk mirror of decode_bypass; bit-for-bit the same reads.
        value = 0
        for _ in range(count):
            self._range >>= 1
            if self._code >= self._range:
                self._code -= self._range
                value = (value << 1) | 1
            else:
                value = value << 1
            while self._range < _TOP:
                self._code = (((self._code << 8) | self._next_byte())
                              & _MASK32)
                self._range = (self._range << 8) & _MASK32
        return value

    def decode_flag(self, group: ContextGroup, variant: int = 0) -> bool:
        # Inlined mirror of the encoder's flag fast path.
        ctx = group.first_bin_context(variant)
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if self._code < bound:
            bit = False
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        else:
            bit = True
            self._code -= bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        while self._range < _TOP:
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._range = (self._range << 8) & _MASK32
        return bit

    def decode_uint(self, group: ContextGroup, variant: int = 0) -> int:
        """Specialized mirror of :meth:`CabacEncoder.encode_uint`.

        Reads exactly the bins the generic base-class path reads (same
        contexts, same renormalization byte fetches), with the register
        state held in locals for the whole symbol. This is the decoder
        half of the entropy hot path; clean-stream decodes and corrupted
        -stream clamping behave identically to the base implementation.
        """
        ladder = group.unary_ladder(variant)
        tu_cap = group.tu_cap
        max_value = group.max_value
        probs = self._probs
        rng = self._range
        code = self._code
        data = self._data
        pos = self._pos
        data_len = len(data)

        value = 0
        terminated = False
        while value < tu_cap:
            ctx = ladder[value]
            prob = probs[ctx]
            bound = (rng >> _PROB_BITS) * prob
            if code < bound:
                rng = bound
                probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
                bit = 0
            else:
                code -= bound
                rng -= bound
                probs[ctx] = prob - (prob >> _MOVE_BITS)
                bit = 1
            while rng < _TOP:
                byte = data[pos] if pos < data_len else 0
                pos += 1
                code = ((code << 8) | byte) & _MASK32
                rng = (rng << 8) & _MASK32
            if not bit:
                terminated = True
                break
            value += 1
        if not terminated:
            # EG0 bypass suffix: count the ones prefix (bounded), then
            # read that many suffix bits — the same bits the generic
            # ``_decode_eg0_bypass`` consumes.
            length = 0
            while True:
                rng >>= 1
                if code >= rng:
                    code -= rng
                    bit = 1
                else:
                    bit = 0
                while rng < _TOP:
                    byte = data[pos] if pos < data_len else 0
                    pos += 1
                    code = ((code << 8) | byte) & _MASK32
                    rng = (rng << 8) & _MASK32
                if not bit or length >= MAX_EG_PREFIX:
                    break
                length += 1
            suffix = 0
            for _ in range(length):
                rng >>= 1
                if code >= rng:
                    code -= rng
                    suffix = (suffix << 1) | 1
                else:
                    suffix <<= 1
                while rng < _TOP:
                    byte = data[pos] if pos < data_len else 0
                    pos += 1
                    code = ((code << 8) | byte) & _MASK32
                    rng = (rng << 8) & _MASK32
            value += (1 << length) - 1 + suffix
        self._range = rng
        self._code = code
        self._pos = pos
        return value if value < max_value else max_value
