"""Context-adaptive binary arithmetic coding (CABAC-style).

A carry-aware binary range coder with per-context adaptive probabilities,
structurally equivalent to H.264's CABAC: syntax bins are coded under
adaptive contexts, equiprobable bins take a bypass path, and the coder
state is reset at every slice.

The probability estimator is the classic 11-bit shift-register update
(as used by LZMA's range coder) rather than H.264's 64-state table; both
adapt geometrically and both exhibit the error behaviour the paper
studies: a single flipped payload bit desynchronizes the decoder and
corrupts the adaptive contexts for the remainder of the slice.

Error hardening: the decoder reads zero bytes past the end of the
payload and clamps all decoded integers, so corrupted streams decode to
garbage — never to a crash or an unbounded loop.
"""

from __future__ import annotations

from typing import List

from .entropy import ContextGroup, EntropyDecoder, EntropyEncoder

_PROB_BITS = 11
_PROB_ONE = 1 << _PROB_BITS          # 2048
_PROB_INIT = _PROB_ONE // 2          # p(0) = 0.5 initially
_MOVE_BITS = 5                       # adaptation rate
_TOP = 1 << 24
_MASK32 = 0xFFFFFFFF


class CabacEncoder(EntropyEncoder):
    """Binary range encoder with adaptive contexts."""

    def __init__(self, num_contexts: int) -> None:
        self._probs: List[int] = [_PROB_INIT] * num_contexts
        self._low = 0
        self._range = _MASK32
        self._cache = 0
        self._cache_size = 1
        self._out = bytearray()
        self._finished = False

    # -- range coder core ----------------------------------------------

    def _shift_low(self) -> None:
        if self._low < 0xFF000000 or self._low > _MASK32:
            carry = self._low >> 32
            self._out.append((self._cache + carry) & 0xFF)
            for _ in range(self._cache_size - 1):
                self._out.append((0xFF + carry) & 0xFF)
            self._cache = (self._low >> 24) & 0xFF
            self._cache_size = 0
        self._cache_size += 1
        self._low = (self._low << 8) & _MASK32

    def _encode_context_bin(self, bit: int, ctx: int) -> None:
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if bit == 0:
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        else:
            self._low += bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        while self._range < _TOP:
            self._shift_low()
            self._range = (self._range << 8) & _MASK32

    def encode_bypass(self, bit: int) -> None:
        self._range >>= 1
        if bit:
            self._low += self._range
        while self._range < _TOP:
            self._shift_low()
            self._range = (self._range << 8) & _MASK32

    def encode_bypass_bits(self, value: int, count: int) -> None:
        # Same per-bit range-coder steps as encode_bypass, run in one
        # call to amortize Python dispatch over whole bin strings.
        for shift in range(count - 1, -1, -1):
            self._range >>= 1
            if (value >> shift) & 1:
                self._low += self._range
            while self._range < _TOP:
                self._shift_low()
                self._range = (self._range << 8) & _MASK32

    # -- EntropyEncoder interface ---------------------------------------

    def encode_flag(self, value: bool, group: ContextGroup,
                    variant: int = 0) -> None:
        self._encode_context_bin(1 if value else 0,
                                 group.first_bin_context(variant))

    @property
    def bits_emitted(self) -> int:
        # The range coder buffers up to cache_size + 4 bytes internally;
        # reported positions therefore lag the bins by a few bytes, which
        # only blurs MB bit-range attribution, never stream correctness.
        return 8 * len(self._out)

    def finish(self) -> bytes:
        if not self._finished:
            for _ in range(5):
                self._shift_low()
            self._finished = True
        return bytes(self._out)


class CabacDecoder(EntropyDecoder):
    """Binary range decoder mirroring :class:`CabacEncoder`."""

    def __init__(self, data: bytes, num_contexts: int) -> None:
        self._data = data
        self._pos = 0
        self._probs: List[int] = [_PROB_INIT] * num_contexts
        self._range = _MASK32
        self._code = 0
        # The first byte is the encoder's spurious initial cache byte (0
        # for well-formed streams); masking keeps corrupted streams sane.
        for _ in range(5):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32

    @property
    def bits_consumed(self) -> int:
        # The range register reads ahead (5 bytes at init, then byte by
        # byte), so this over-reports actual consumption by up to a few
        # bytes — a conservative bound for concealment salvage.
        return 8 * self._pos

    def _next_byte(self) -> int:
        if self._pos >= len(self._data):
            self._pos += 1
            return 0
        byte = self._data[self._pos]
        self._pos += 1
        return byte

    def _decode_context_bin(self, ctx: int) -> int:
        prob = self._probs[ctx]
        bound = (self._range >> _PROB_BITS) * prob
        if self._code < bound:
            bit = 0
            self._range = bound
            self._probs[ctx] = prob + ((_PROB_ONE - prob) >> _MOVE_BITS)
        else:
            bit = 1
            self._code -= bound
            self._range -= bound
            self._probs[ctx] = prob - (prob >> _MOVE_BITS)
        while self._range < _TOP:
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._range = (self._range << 8) & _MASK32
        return bit

    def decode_bypass(self) -> int:
        self._range >>= 1
        if self._code >= self._range:
            self._code -= self._range
            bit = 1
        else:
            bit = 0
        while self._range < _TOP:
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._range = (self._range << 8) & _MASK32
        return bit

    def decode_bypass_bits(self, count: int) -> int:
        # Bulk mirror of decode_bypass; bit-for-bit the same reads.
        value = 0
        for _ in range(count):
            self._range >>= 1
            if self._code >= self._range:
                self._code -= self._range
                value = (value << 1) | 1
            else:
                value = value << 1
            while self._range < _TOP:
                self._code = (((self._code << 8) | self._next_byte())
                              & _MASK32)
                self._range = (self._range << 8) & _MASK32
        return value

    def decode_flag(self, group: ContextGroup, variant: int = 0) -> bool:
        return bool(self._decode_context_bin(group.first_bin_context(variant)))
