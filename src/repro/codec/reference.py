"""Scalar reference kernels for the vectorized codec hot paths.

Each function here is a deliberately naive, loop-level implementation of
a kernel that the production codec runs in batched numpy form. They are
*not* used on any encode/decode path — they exist so the property tests
in ``tests/codec/test_vectorized_equivalence.py`` can assert, input by
input, that vectorization changed only the speed of the codec and not a
single output bit.

Keep these boring. When a production kernel changes behaviour on
purpose, change the matching reference here in the same commit and
refresh the golden digests; if a test disagrees with its reference and
the change was *not* on purpose, the production kernel is wrong.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .intra import MODE_ORDER, predict_intra
from .transform import CF, SCALE, inverse_transform, quant_step
from .types import IntraMode, MotionVector


def sad_scalar(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """Sum of absolute differences via explicit Python loops."""
    total = 0
    rows, cols = block_a.shape
    for row in range(rows):
        for col in range(cols):
            total += abs(int(block_a[row, col]) - int(block_b[row, col]))
    return total


def best_mv_scalar(current: np.ndarray, ref_padded: np.ndarray, pad: int,
                   top: int, left: int,
                   rect: Tuple[int, int, int, int], search_range: int,
                   mv_cost_lambda: float) -> Tuple[MotionVector, float]:
    """Exhaustive scalar motion search for one partition rectangle.

    Scans displacements in row-major order keeping the first strict
    minimum — the tie-break contract every production search implements.
    """
    oy, ox, height, width = rect
    src = current[top + oy:top + oy + height, left + ox:left + ox + width]
    best_cost = None
    best = (MotionVector(0, 0), 0.0)
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            row = top + oy + dy + pad
            col = left + ox + dx + pad
            candidate = ref_padded[row:row + height, col:col + width]
            sad = sad_scalar(src, candidate)
            cost = sad + mv_cost_lambda * (abs(dy) + abs(dx))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = (MotionVector(dy, dx), float(sad))
    return best


def choose_intra_mode_scalar(source_mb: np.ndarray,
                             reconstructed: np.ndarray, mb_row: int,
                             mb_col: int, min_mb_row: int = 0
                             ) -> Tuple[IntraMode, np.ndarray, float]:
    """Strict-less-than scan over intra modes, one SAD at a time."""
    best_mode = None
    best_prediction = None
    best_sad = None
    for mode in MODE_ORDER:
        prediction = predict_intra(reconstructed, mb_row, mb_col, mode,
                                   min_mb_row)
        sad = float(sad_scalar(source_mb, prediction))
        if best_sad is None or sad < best_sad:
            best_mode, best_prediction, best_sad = mode, prediction, sad
    assert best_mode is not None and best_prediction is not None
    return best_mode, best_prediction, float(best_sad)


def forward_transform_scalar(block: np.ndarray) -> np.ndarray:
    """Integer transform of one 4x4 block: CF @ X @ CF^T, loop form."""
    x = block.astype(np.int64)
    out = np.zeros((4, 4), dtype=np.int64)
    for i in range(4):
        for l in range(4):  # noqa: E741 - matches the einsum subscript
            acc = 0
            for j in range(4):
                for k in range(4):
                    acc += int(CF[i, j]) * int(x[j, k]) * int(CF[l, k])
            out[i, l] = acc
    return out


def quantize_scalar(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """Per-coefficient rounding against the scaled quantizer step."""
    step = quant_step(qp)
    out = np.zeros((4, 4), dtype=np.int32)
    for i in range(4):
        for j in range(4):
            out[i, j] = np.int32(np.rint(
                np.float64(coefficients[i, j]) / (step * SCALE[i, j])))
    return out


def reconstruct_residual_block_scalar(levels: np.ndarray,
                                      qp: int) -> np.ndarray:
    """Per-element dequantize, then a single-block inverse transform.

    Dequantization is scalarized (each output depends on exactly one
    level, so loop form is exact). The float inverse stays on the
    production ``inverse_transform`` einsum on purpose: a loop-form
    matrix product would associate the reduction differently and can
    drift by an ulp — the very hazard the vectorized code avoids by
    never re-deriving that kernel.
    """
    step = quant_step(qp)
    dequantized = np.zeros((4, 4), dtype=np.float64)
    for i in range(4):
        for j in range(4):
            dequantized[i, j] = (np.float64(levels[i, j]) * step
                                 * SCALE[i, j])
    return inverse_transform(dequantized[np.newaxis])[0]


def deblock_edge_scalar(p1: int, p0: int, q0: int, q1: int, alpha: int,
                        beta: int, clip_limit: int) -> Tuple[int, int]:
    """H.264 normal filter for one pixel quadruple across an edge."""
    if not (abs(p0 - q0) < alpha and abs(p1 - p0) < beta
            and abs(q1 - q0) < beta):
        return p0, q0
    delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3
    delta = min(max(delta, -clip_limit), clip_limit)
    new_p0 = min(max(p0 + delta, 0), 255)
    new_q0 = min(max(q0 - delta, 0), 255)
    return new_p0, new_q0


def filter_vertical_edges_scalar(frame: np.ndarray, alpha: int, beta: int,
                                 clip_limit: int) -> None:
    """Pixel-at-a-time sweep over all vertical 4x4-grid edges, in place."""
    height, width = frame.shape
    for col in range(4, width, 4):
        for row in range(height):
            p1 = int(frame[row, col - 2])
            p0 = int(frame[row, col - 1])
            q0 = int(frame[row, col])
            q1 = int(frame[row, col + 1]) if col + 1 < width else q0
            new_p0, new_q0 = deblock_edge_scalar(p1, p0, q0, q1, alpha,
                                                 beta, clip_limit)
            frame[row, col - 1] = new_p0
            frame[row, col] = new_q0


def encode_bypass_bits_scalar(encoder, value: int, count: int) -> None:
    """MSB-first bit loop through ``encode_bypass`` (the bulk paths'
    contract)."""
    for shift in range(count - 1, -1, -1):
        encoder.encode_bypass((value >> shift) & 1)


def decode_bypass_bits_scalar(decoder, count: int) -> int:
    """Bit-at-a-time mirror of :func:`encode_bypass_bits_scalar`."""
    value = 0
    for _ in range(count):
        value = (value << 1) | decoder.decode_bypass()
    return value


def write_bits_scalar(writer, value: int, count: int) -> None:
    """MSB-first loop through ``BitWriter.write_bit``."""
    for shift in range(count - 1, -1, -1):
        writer.write_bit((value >> shift) & 1)


def read_bits_scalar(reader, count: int) -> int:
    """Bit-at-a-time mirror of :func:`write_bits_scalar`."""
    value = 0
    for _ in range(count):
        value = (value << 1) | reader.read_bit()
    return value


def coded_block_pattern_scalar(coefficients: np.ndarray
                               ) -> Tuple[bool, bool, bool, bool]:
    """Quadrant coded flags via explicit block loops."""
    flags: List[bool] = []
    for qy, qx in ((0, 0), (0, 8), (8, 0), (8, 8)):
        coded = False
        for by in range(2):
            for bx in range(2):
                index = (qy // 4 + by) * 4 + (qx // 4 + bx)
                if np.any(coefficients[index]):
                    coded = True
        flags.append(coded)
    return tuple(flags)  # type: ignore[return-value]


__all__ = [
    "sad_scalar",
    "best_mv_scalar",
    "choose_intra_mode_scalar",
    "forward_transform_scalar",
    "quantize_scalar",
    "reconstruct_residual_block_scalar",
    "deblock_edge_scalar",
    "filter_vertical_edges_scalar",
    "encode_bypass_bits_scalar",
    "decode_bypass_bits_scalar",
    "write_bits_scalar",
    "read_bits_scalar",
    "coded_block_pattern_scalar",
]
