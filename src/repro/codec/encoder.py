"""The video encoder.

Encodes raw luma video into an H.264-like bitstream with a closed
reconstruction loop (references are the *reconstructed* frames, exactly
what a decoder will see), while emitting the per-macroblock
:class:`~repro.codec.types.EncodingTrace` that VideoApp's dependency
analysis consumes: bit ranges and pixel-source dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import EncoderError
from ..obs import trace as obs_trace
from ..video.frame import MACROBLOCK_SIZE, VideoSequence
from .cabac import CabacEncoder
from .cavlc import CavlcEncoder
from .config import EncoderConfig, EntropyCoder
from .contexts import DEFAULT_CONTEXT_MODEL
from .deblock import deblock_frame
from .encoded import EncodedFrame, EncodedVideo, FrameHeader, VideoHeader
from .gop import FramePlan, plan_gop
from .intra import choose_intra_mode, intra_dependencies
from .motion import (
    FrameMotionSearch,
    compensate,
    pad_reference,
    reference_dependencies,
)
from .neighbors import FrameMbState
from .ratecontrol import frame_activity_offsets, frame_qp
from .reconstruct import ReferenceSet, build_prediction, reconstruct_macroblock
from .syntax import encode_macroblock, finalize_macroblock
from .transform import (
    MAX_QP,
    MIN_QP,
    reconstruct_residual,
    transform_and_quantize,
)
from .types import (
    PARTITION_RECTS,
    QUADRANT_ORIGINS,
    SUBPARTITION_RECTS,
    DependencyRecord,
    EncodingTrace,
    FrameTrace,
    FrameType,
    InterPartition,
    MacroblockDecision,
    MacroblockMode,
    MacroblockTrace,
    MotionVector,
    PartitionType,
    PredictionDirection,
    SubPartitionType,
)


def slice_bands(mb_rows: int, slices: int) -> List[Tuple[int, int]]:
    """Split MB rows into ``slices`` horizontal bands [(start, end)...]."""
    if slices > mb_rows:
        raise EncoderError(
            f"cannot cut {mb_rows} MB rows into {slices} slices"
        )
    base = mb_rows // slices
    remainder = mb_rows % slices
    bands = []
    start = 0
    for index in range(slices):
        size = base + (1 if index < remainder else 0)
        bands.append((start, start + size))
        start += size
    return bands


class Encoder:
    """H.264-like encoder; see :class:`EncoderConfig` for knobs."""

    def __init__(self, config: Optional[EncoderConfig] = None) -> None:
        self.config = config or EncoderConfig()
        self._model = DEFAULT_CONTEXT_MODEL
        self._pad = self.config.search_range

    # -- public API --------------------------------------------------------

    def encode(self, video: VideoSequence) -> EncodedVideo:
        """Encode ``video``; the result carries the VideoApp trace."""
        if len(video) == 0:
            raise EncoderError("cannot encode an empty sequence")
        with obs_trace.span("encode", frames=len(video),
                            entropy=self.config.entropy_coder.name):
            return self._encode_sequence(video)

    def _encode_sequence(self, video: VideoSequence) -> EncodedVideo:
        config = self.config
        plans = plan_gop(len(video), config.gop_size, config.bframes)
        coded_of = {plan.display_index: plan.coded_index for plan in plans}
        mb_rows = video.mb_rows
        mb_cols = video.mb_cols
        if config.slices > mb_rows:
            raise EncoderError(
                f"slices ({config.slices}) exceed MB rows ({mb_rows})"
            )

        trace = EncodingTrace(mb_rows=mb_rows, mb_cols=mb_cols)
        reconstructed: Dict[int, np.ndarray] = {}
        padded: Dict[int, np.ndarray] = {}
        frames: List[EncodedFrame] = []
        for plan in plans:
            frame, frame_trace, recon = self._encode_frame(
                plan, video, padded, coded_of)
            frames.append(frame)
            trace.frames.append(frame_trace)
            reconstructed[plan.display_index] = recon
            padded[plan.display_index] = pad_reference(recon, self._pad)

        header = VideoHeader(
            width=video.width, height=video.height, num_frames=len(video),
            gop_size=config.gop_size, bframes=config.bframes,
            slices=config.slices, entropy_coder=config.entropy_coder,
            crf=config.crf, search_range=config.search_range, fps=video.fps,
            deblocking=config.deblocking,
        )
        return EncodedVideo(header=header, frames=frames, trace=trace)

    def reconstruct(self, video: VideoSequence) -> VideoSequence:
        """The encoder's own lossy reconstruction (decode of a clean
        stream), used as the paper's quality baseline ("coded video
        without bit flips")."""
        from .decoder import Decoder  # local import to avoid a cycle

        return Decoder().decode(self.encode(video))

    # -- per-frame encoding --------------------------------------------------

    def _new_entropy_encoder(self):
        if self.config.entropy_coder == EntropyCoder.CABAC:
            return CabacEncoder(self._model.total_contexts)
        return CavlcEncoder(self._model.total_contexts)

    def _references(self, plan: FramePlan,
                    padded: Dict[int, np.ndarray]) -> ReferenceSet:
        references: ReferenceSet = {}
        if plan.ref_forward is not None:
            references[PredictionDirection.FORWARD] = padded[plan.ref_forward]
        if plan.ref_backward is not None:
            references[PredictionDirection.BACKWARD] = padded[plan.ref_backward]
        return references

    def _encode_frame(self, plan: FramePlan, video: VideoSequence,
                      padded: Dict[int, np.ndarray],
                      coded_of: Dict[int, int]
                      ) -> Tuple[EncodedFrame, FrameTrace, np.ndarray]:
        with obs_trace.span("encode.frame", coded_index=plan.coded_index,
                            frame_type=plan.frame_type.name):
            stages = obs_trace.stage_clock()
            result = self._encode_frame_body(plan, video, padded, coded_of,
                                             stages)
            stages.emit()
            return result

    def _encode_frame_body(self, plan: FramePlan, video: VideoSequence,
                           padded: Dict[int, np.ndarray],
                           coded_of: Dict[int, int], stages
                           ) -> Tuple[EncodedFrame, FrameTrace, np.ndarray]:
        config = self.config
        source = video[plan.display_index]
        mb_rows, mb_cols = video.mb_rows, video.mb_cols
        base_qp = frame_qp(config.crf, plan.frame_type)
        references = self._references(plan, padded)
        ref_coded = {
            PredictionDirection.FORWARD:
                coded_of.get(plan.ref_forward, -1),
            PredictionDirection.BACKWARD:
                coded_of.get(plan.ref_backward, -1),
        }
        state = FrameMbState(mb_rows, mb_cols)
        qp_offsets = (frame_activity_offsets(source)
                      if config.adaptive_qp else None)
        searches: Dict[PredictionDirection, FrameMotionSearch] = {}
        if plan.frame_type != FrameType.I:
            # One batched full-search pass per reference serves every
            # macroblock and partition rectangle of this frame.
            with stages.time("encode.inter"):
                searches = {
                    direction: FrameMotionSearch(
                        source, reference, self._pad, config.search_range,
                        config.mv_cost_lambda)
                    for direction, reference in references.items()
                }
        recon = np.zeros_like(source)
        slice_payloads: List[bytes] = []
        slice_starts: List[int] = []
        mb_traces: List[MacroblockTrace] = []
        offset_bits = 0
        for start_row, end_row in slice_bands(mb_rows, config.slices):
            encoder = self._new_entropy_encoder()
            state.start_slice(base_qp)
            slice_starts.append(start_row * mb_cols)
            for mb_row in range(start_row, end_row):
                for mb_col in range(mb_cols):
                    bit_start = offset_bits + encoder.bits_emitted
                    decision, deps = self._encode_macroblock(
                        encoder, plan, source, recon, references, ref_coded,
                        state, base_qp, mb_row, mb_col, start_row, stages,
                        searches, qp_offsets)
                    bit_end = offset_bits + encoder.bits_emitted
                    mb_traces.append(MacroblockTrace(
                        frame_coded_index=plan.coded_index,
                        mb_index=mb_row * mb_cols + mb_col,
                        bit_start=bit_start,
                        bit_end=bit_end,
                        dependencies=deps,
                    ))
            with stages.time("encode.entropy"):
                payload = encoder.finish()
            slice_payloads.append(payload)
            offset_bits += 8 * len(payload)

        if config.deblocking:
            # In-loop filter: the deblocked frame is what references and
            # viewers see; intra prediction above used unfiltered pixels.
            recon = deblock_frame(recon, base_qp)

        full_payload = b"".join(slice_payloads)
        header = FrameHeader(
            coded_index=plan.coded_index,
            display_index=plan.display_index,
            frame_type=plan.frame_type,
            base_qp=base_qp,
            ref_forward=plan.ref_forward,
            ref_backward=plan.ref_backward,
            slice_byte_lengths=[len(p) for p in slice_payloads],
        )
        frame_trace = FrameTrace(
            coded_index=plan.coded_index,
            display_index=plan.display_index,
            frame_type=plan.frame_type,
            payload_bits=8 * len(full_payload),
            slice_starts=slice_starts,
            macroblocks=mb_traces,
        )
        return (EncodedFrame(header=header, payload=full_payload),
                frame_trace, recon)

    # -- per-macroblock encoding ----------------------------------------------

    def _encode_macroblock(self, encoder, plan: FramePlan,
                           source: np.ndarray, recon: np.ndarray,
                           references: ReferenceSet,
                           ref_coded: Dict[PredictionDirection, int],
                           state: FrameMbState, base_qp: int,
                           mb_row: int, mb_col: int, min_mb_row: int,
                           stages=obs_trace.NULL_STAGE_CLOCK,
                           searches: Optional[Dict[PredictionDirection,
                                                   FrameMotionSearch]] = None,
                           qp_offsets: Optional[np.ndarray] = None
                           ) -> Tuple[MacroblockDecision,
                                      List[DependencyRecord]]:
        config = self.config
        top = mb_row * MACROBLOCK_SIZE
        left = mb_col * MACROBLOCK_SIZE
        current = source[top:top + MACROBLOCK_SIZE, left:left + MACROBLOCK_SIZE]
        if config.adaptive_qp and qp_offsets is None:
            qp_offsets = frame_activity_offsets(source)
        offset = (int(qp_offsets[mb_row, mb_col])
                  if qp_offsets is not None else 0)
        qp = min(max(base_qp + offset, MIN_QP), MAX_QP)
        pred_mv = state.predict_mv(mb_row, mb_col, min_mb_row)

        if plan.frame_type == FrameType.I:
            with stages.time("encode.intra"):
                decision = self._decide_intra(current, recon, mb_row, mb_col,
                                              min_mb_row, qp)
        else:
            with stages.time("encode.inter"):
                if searches is None:
                    searches = {
                        direction: FrameMotionSearch(
                            source, reference, self._pad,
                            config.search_range, config.mv_cost_lambda)
                        for direction, reference in references.items()
                    }
                decision = self._decide_inter(
                    plan, current, recon, references, searches, state,
                    mb_row, mb_col, min_mb_row, qp, pred_mv)

        # Residual coding against the chosen prediction.
        with stages.time("encode.transform"):
            prediction = build_prediction(decision, recon, references,
                                          self._pad, mb_row, mb_col,
                                          min_mb_row)
            residual = current.astype(np.int32) - prediction.astype(np.int32)
            coefficients = transform_and_quantize(residual, decision.qp)
            cbp = self._coded_block_pattern(coefficients)
        decision.coefficients = coefficients
        decision.cbp = cbp

        # Skip conversion: inter 16x16, forward, predicted MV, no residual.
        if (plan.frame_type != FrameType.I
                and decision.mode == MacroblockMode.INTER
                and decision.partition_type == PartitionType.P16x16
                and decision.partitions[0].direction
                == PredictionDirection.FORWARD
                and decision.partitions[0].mv == pred_mv
                and not any(cbp)):
            decision = MacroblockDecision(
                mode=MacroblockMode.SKIP,
                qp=state.prev_qp,
                partition_type=PartitionType.P16x16,
                partitions=[InterPartition(rect=(0, 0, 16, 16), mv=pred_mv)],
            )
            prediction = build_prediction(decision, recon, references,
                                          self._pad, mb_row, mb_col,
                                          min_mb_row)

        with stages.time("encode.entropy"):
            encode_macroblock(encoder, self._model, state, decision,
                              plan.frame_type, mb_row, mb_col, min_mb_row)

        # Reconstruction (closed loop).
        with stages.time("encode.transform"):
            residual_pixels = None
            if decision.coefficients is not None and any(decision.cbp):
                residual_pixels = reconstruct_residual(decision.coefficients,
                                                       decision.qp)
            recon_mb = reconstruct_macroblock(decision, prediction,
                                              residual_pixels)
        recon[top:top + MACROBLOCK_SIZE, left:left + MACROBLOCK_SIZE] = recon_mb

        finalize_macroblock(state, decision, mb_row, mb_col)
        deps = self._dependencies(plan, decision, ref_coded, mb_row, mb_col,
                                  min_mb_row, source.shape)
        return decision, deps

    #: 4x4 coefficient-block indices composing each 8x8 quadrant.
    _QUADRANT_BLOCKS = np.array([
        [(qy // 4 + by) * 4 + (qx // 4 + bx)
         for by in range(2) for bx in range(2)]
        for qy, qx in QUADRANT_ORIGINS
    ])

    @staticmethod
    def _coded_block_pattern(coefficients: np.ndarray
                             ) -> Tuple[bool, bool, bool, bool]:
        block_coded = coefficients.reshape(16, 16).any(axis=1)
        flags = block_coded[Encoder._QUADRANT_BLOCKS].any(axis=1)
        return tuple(flags.tolist())  # type: ignore[return-value]

    # -- mode decisions -----------------------------------------------------

    def _decide_intra(self, current: np.ndarray, recon: np.ndarray,
                      mb_row: int, mb_col: int, min_mb_row: int,
                      qp: int) -> MacroblockDecision:
        mode, _prediction, _sad = choose_intra_mode(
            current, recon, mb_row, mb_col, min_mb_row)
        return MacroblockDecision(mode=MacroblockMode.INTRA, qp=qp,
                                  intra_mode=mode)

    def _decide_inter(self, plan: FramePlan, current: np.ndarray,
                      recon: np.ndarray, references: ReferenceSet,
                      searches: Dict[PredictionDirection, FrameMotionSearch],
                      state: FrameMbState, mb_row: int, mb_col: int,
                      min_mb_row: int, qp: int,
                      pred_mv: MotionVector) -> MacroblockDecision:
        config = self.config
        top = mb_row * MACROBLOCK_SIZE
        left = mb_col * MACROBLOCK_SIZE

        tables = {
            direction: searcher.mb_table(mb_row, mb_col)
            for direction, searcher in searches.items()
        }

        def best_for_rect(rect):
            """(mv, direction, cost, mv_backward) of the best candidate:
            forward, backward, or the bidirectional average."""
            column = FrameMotionSearch.rect_column(rect)
            per_direction = {}
            best = None
            for direction, table in tables.items():
                mv, sad = table[column]
                per_direction[direction] = mv
                if best is None or sad < best[2]:
                    best = (mv, direction, sad, None)
            if len(per_direction) == 2:
                # Bidirectional candidate: rounded average of the two
                # best single-direction blocks.
                oy, ox, height, width = rect
                current_rect = current[oy:oy + height, ox:ox + width]
                blocks = {}
                for direction, mv in per_direction.items():
                    blocks[direction] = compensate(
                        references[direction], self._pad, top, left, rect,
                        mv).astype(np.int32)
                averaged = (blocks[PredictionDirection.FORWARD]
                            + blocks[PredictionDirection.BACKWARD] + 1) >> 1
                sad_bi = float(np.abs(current_rect.astype(np.int32)
                                      - averaged).sum()) + config.bi_penalty
                if sad_bi < best[2]:
                    best = (per_direction[PredictionDirection.FORWARD],
                            PredictionDirection.BIDIRECTIONAL, sad_bi,
                            per_direction[PredictionDirection.BACKWARD])
            return best

        candidates = []  # (cost, partition_type, sub_types, partitions)
        for ptype in (PartitionType.P16x16, PartitionType.P16x8,
                      PartitionType.P8x16):
            rects = PARTITION_RECTS[ptype]
            parts = [best_for_rect(rect) for rect in rects]
            cost = (sum(p[2] for p in parts)
                    + config.partition_penalty * (len(rects) - 1))
            partitions = [
                InterPartition(rect=rect, mv=p[0], direction=p[1],
                               mv_backward=p[3])
                for rect, p in zip(rects, parts)
            ]
            candidates.append((cost, ptype, None, partitions))

        # P8x8: choose the best sub-layout per quadrant independently.
        sub_types: List[SubPartitionType] = []
        partitions8: List[InterPartition] = []
        total_cost = 0.0
        for qy, qx in QUADRANT_ORIGINS:
            best_quadrant = None
            for sub in SubPartitionType:
                rects = [(qy + oy, qx + ox, h, w)
                         for oy, ox, h, w in SUBPARTITION_RECTS[sub]]
                parts = [best_for_rect(rect) for rect in rects]
                cost = (sum(p[2] for p in parts)
                        + config.partition_penalty * len(rects))
                if best_quadrant is None or cost < best_quadrant[0]:
                    best_quadrant = (cost, sub, [
                        InterPartition(rect=rect, mv=p[0], direction=p[1],
                                       mv_backward=p[3])
                        for rect, p in zip(rects, parts)
                    ])
            assert best_quadrant is not None
            total_cost += best_quadrant[0]
            sub_types.append(best_quadrant[1])
            partitions8.extend(best_quadrant[2])
        candidates.append((total_cost - config.partition_penalty,
                           PartitionType.P8x8, sub_types, partitions8))

        best_cost, ptype, subs, partitions = min(candidates,
                                                 key=lambda c: c[0])

        # Intra competes in inter frames too.
        intra_mode, _pred, intra_sad = choose_intra_mode(
            current, recon, mb_row, mb_col, min_mb_row)
        if intra_sad + config.intra_penalty < best_cost:
            return MacroblockDecision(mode=MacroblockMode.INTRA, qp=qp,
                                      intra_mode=intra_mode)
        return MacroblockDecision(
            mode=MacroblockMode.INTER, qp=qp, partition_type=ptype,
            sub_types=subs, partitions=partitions,
        )

    # -- trace dependencies -----------------------------------------------

    def _dependencies(self, plan: FramePlan, decision: MacroblockDecision,
                      ref_coded: Dict[PredictionDirection, int],
                      mb_row: int, mb_col: int, min_mb_row: int,
                      frame_shape: Tuple[int, int]
                      ) -> List[DependencyRecord]:
        height, width = frame_shape
        mb_cols = width // MACROBLOCK_SIZE
        if decision.mode == MacroblockMode.INTRA:
            assert decision.intra_mode is not None
            return intra_dependencies(plan.coded_index, mb_row, mb_col,
                                      mb_cols, decision.intra_mode,
                                      min_mb_row)
        deps: List[DependencyRecord] = []
        top = mb_row * MACROBLOCK_SIZE
        left = mb_col * MACROBLOCK_SIZE
        for partition in decision.partitions:
            if partition.direction == PredictionDirection.BIDIRECTIONAL:
                # Each reference supplies half of every averaged pixel.
                assert partition.mv_backward is not None
                halves = [
                    (PredictionDirection.FORWARD, partition.mv),
                    (PredictionDirection.BACKWARD, partition.mv_backward),
                ]
                for direction, mv in halves:
                    for record in reference_dependencies(
                            ref_coded[direction], top, left,
                            partition.rect, mv, height, width, mb_cols):
                        deps.append(DependencyRecord(
                            source=record.source,
                            pixels=record.pixels / 2.0))
                continue
            deps.extend(reference_dependencies(
                ref_coded[partition.direction], top, left, partition.rect,
                partition.mv, height, width, mb_cols))
        return deps
