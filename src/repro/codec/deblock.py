"""In-loop deblocking filter (simplified H.264 normal filter).

Block-transform codecs produce visible discontinuities at block
boundaries; H.264 smooths them *in the coding loop*, so filtered frames
are also the motion-compensation references. This module applies the
standard normal-filter core on the 4x4 block grid:

For an edge between pixels ``p1 p0 | q0 q1``, when the step across the
edge is small enough to be a coding artifact rather than a real edge
(|p0-q0| < alpha(QP), side gradients < beta(QP)), the boundary pixels
move toward each other by a clipped delta — exactly H.264's
``delta = clip(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -c, c)``.

The filter runs once per reconstructed frame (after all macroblocks,
before the frame is used as a reference or emitted), identically in the
encoder's reconstruction loop and the decoder. Intra prediction reads
*unfiltered* pixels, as in H.264.
"""

from __future__ import annotations

import numpy as np

#: Grid pitch of filtered edges (the transform block size).
_EDGE_STEP = 4


def filter_thresholds(qp: int) -> tuple:
    """(alpha, beta, clip) thresholds for a given QP.

    Grow roughly like H.264's tables: exponential in QP for alpha, and
    slower for beta; at very low QP the filter turns itself off.
    """
    if qp < 16:
        return 0, 0, 0
    alpha = min(255, int(round(0.8 * (2.0 ** (qp / 6.0)) - 1.0)))
    beta = min(18, int(round(0.5 * qp - 7.0)))
    clip_limit = max(1, beta // 2)
    if alpha <= 0 or beta <= 0:
        return 0, 0, 0
    return alpha, beta, clip_limit


def _filter_vertical_edges(frame: np.ndarray, alpha: int, beta: int,
                           clip_limit: int) -> None:
    """Filter all vertical 4x4-grid edges of an int16 frame in place.

    Every edge is filtered in one batched gather/scatter: edges sit at a
    4-pixel pitch while each edge only reads columns [c-2, c+1] and
    writes [c-1, c], so no edge ever touches pixels another edge wrote
    and the batch is exactly equivalent to the left-to-right scalar
    sweep.

    ``frame`` may carry leading batch axes (``(..., H, W)``): the filter
    is purely per-row elementwise, so a stacked call is bitwise
    identical to filtering each frame alone.
    """
    width = frame.shape[-1]
    columns = np.arange(_EDGE_STEP, width, _EDGE_STEP)
    if columns.size == 0:
        return
    p1 = frame[..., columns - 2]
    p0 = frame[..., columns - 1]
    q0 = frame[..., columns]
    next_columns = np.minimum(columns + 1, width - 1)
    q1 = np.where(columns + 1 < width, frame[..., next_columns], q0)
    active = ((np.abs(p0 - q0) < alpha)
              & (np.abs(p1 - p0) < beta)
              & (np.abs(q1 - q0) < beta))
    delta = np.clip(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3,
                    -clip_limit, clip_limit)
    frame[..., columns - 1] = np.where(
        active, np.clip(p0 + delta, 0, 255), p0)
    frame[..., columns] = np.where(
        active, np.clip(q0 - delta, 0, 255), q0)


def deblock_frame(frame: np.ndarray, qp: int) -> np.ndarray:
    """Apply the deblocking filter to a reconstructed frame.

    Returns a new uint8 frame; the input is untouched. Vertical edges
    are filtered first, then horizontal ones (via transpose), matching
    the H.264 order.
    """
    alpha, beta, clip_limit = filter_thresholds(qp)
    if alpha == 0:
        return frame.copy()
    working = frame.astype(np.int16)
    _filter_vertical_edges(working, alpha, beta, clip_limit)
    working = working.T.copy()
    _filter_vertical_edges(working, alpha, beta, clip_limit)
    return working.T.astype(np.uint8)


def deblock_frames(frames: np.ndarray, qp: int) -> np.ndarray:
    """Apply :func:`deblock_frame` to a stack of frames at once.

    ``frames`` is ``(N, H, W)``; the result is bitwise identical to
    filtering each frame separately (the filter never reads across the
    batch axis). One numpy pass per edge direction for the whole stack.
    """
    alpha, beta, clip_limit = filter_thresholds(qp)
    if alpha == 0:
        return frames.copy()
    working = frames.astype(np.int16)
    _filter_vertical_edges(working, alpha, beta, clip_limit)
    working = working.swapaxes(-1, -2).copy()
    _filter_vertical_edges(working, alpha, beta, clip_limit)
    return working.swapaxes(-1, -2).astype(np.uint8)


def blockiness(frame: np.ndarray) -> float:
    """Mean absolute step across 4x4 grid edges (a blockiness proxy).

    Used by tests and experiments to verify the filter actually reduces
    grid-aligned discontinuities.
    """
    as_int = frame.astype(np.int32)
    col_edges = np.arange(_EDGE_STEP, frame.shape[1], _EDGE_STEP)
    row_edges = np.arange(_EDGE_STEP, frame.shape[0], _EDGE_STEP)
    vertical = np.abs(as_int[:, col_edges]
                      - as_int[:, col_edges - 1]).mean()
    horizontal = np.abs(as_int[row_edges, :]
                        - as_int[row_edges - 1, :]).mean()
    return float(0.5 * (vertical + horizontal))
