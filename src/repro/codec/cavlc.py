"""Context-free variable-length coding (CAVLC-style).

The alternative H.264 entropy backend: static Exp-Golomb / unary codes
written directly as bits, with no adaptive state. Compared to CABAC it
is 10-15% less compact but far more error-tolerant — a bit flip can
misalign codes for the rest of the slice, but there is no adaptive
context to poison, and single-codeword damage often stays local.

Because codes map to whole bits, MB bit ranges reported by this backend
are exact (unlike the CABAC backend's few-byte lag).
"""

from __future__ import annotations

from .bitstream import BitReader, BitWriter
from .entropy import ContextGroup, EntropyDecoder, EntropyEncoder


class CavlcEncoder(EntropyEncoder):
    """Static VLC encoder; contexts are accepted and ignored."""

    def __init__(self, num_contexts: int = 0) -> None:
        # num_contexts kept for interface parity with CabacEncoder.
        self._writer = BitWriter()
        self._finished: bytes = b""
        self._done = False

    def _encode_context_bin(self, bit: int, ctx: int) -> None:
        self._writer.write_bit(bit)

    def encode_bypass(self, bit: int) -> None:
        self._writer.write_bit(bit)

    def encode_bypass_bits(self, value: int, count: int) -> None:
        self._writer.write_bits(value, count)

    def encode_flag(self, value: bool, group: ContextGroup,
                    variant: int = 0) -> None:
        self._writer.write_bit(1 if value else 0)

    @property
    def bits_emitted(self) -> int:
        return self._writer.bit_length

    def finish(self) -> bytes:
        if not self._done:
            self._finished = self._writer.getvalue()
            self._done = True
        return self._finished


class CavlcDecoder(EntropyDecoder):
    """Static VLC decoder mirroring :class:`CavlcEncoder`."""

    def __init__(self, data: bytes, num_contexts: int = 0) -> None:
        self._reader = BitReader(data)

    @property
    def bits_consumed(self) -> int:
        # Codes map to whole bits, so the position is exact.
        return self._reader.bit_position

    def _decode_context_bin(self, ctx: int) -> int:
        return self._reader.read_bit()

    def decode_bypass(self) -> int:
        return self._reader.read_bit()

    def decode_bypass_bits(self, count: int) -> int:
        return self._reader.read_bits(count)

    def decode_flag(self, group: ContextGroup, variant: int = 0) -> bool:
        return bool(self._reader.read_bit())
