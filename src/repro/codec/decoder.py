"""The video decoder.

Mirrors the encoder exactly on clean streams and decodes corrupted
streams best-effort, the way the paper's methodology requires:

* precise frame headers let it locate every frame and slice payload, so
  it always resynchronizes at slice boundaries (entropy contexts reset);
* within a corrupted slice it misinterprets rather than fails — all
  syntax values are clamped to legal ranges, all compensation accesses
  are clamped into the padded reference;
* damage propagates exactly like in a real decoder: through entropy
  desynchronization and context corruption within the slice, and through
  motion-compensated references across frames.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import BitstreamError
from ..obs import trace as obs_trace
from ..video.frame import MACROBLOCK_SIZE, VideoSequence
from .cabac import CabacDecoder
from .cavlc import CavlcDecoder
from .config import EntropyCoder
from .contexts import DEFAULT_CONTEXT_MODEL
from .deblock import deblock_frame
from .encoded import EncodedFrame, EncodedVideo
from .encoder import slice_bands
from .motion import pad_reference
from .neighbors import FrameMbState
from .reconstruct import ReferenceSet, build_prediction, reconstruct_macroblock
from .syntax import decode_macroblock, finalize_macroblock
from .transform import reconstruct_residuals_many
from .types import (
    FrameType,
    MacroblockDecision,
    PredictionDirection,
)


class Decoder:
    """H.264-like decoder; robust against corrupted payloads."""

    def __init__(self) -> None:
        self._model = DEFAULT_CONTEXT_MODEL

    def decode(self, encoded: EncodedVideo) -> VideoSequence:
        """Decode to a display-order raw sequence.

        Raises :class:`BitstreamError` for structurally invalid streams
        (the precise headers are inconsistent); payload damage alone
        never raises — it decodes best-effort.
        """
        header = encoded.header
        if len(encoded.frames) != header.num_frames:
            raise BitstreamError(
                f"header promises {header.num_frames} frames, "
                f"container has {len(encoded.frames)}"
            )
        self._validate_structure(encoded)
        with obs_trace.span("decode", frames=header.num_frames):
            pad = header.search_range
            reconstructed: Dict[int, np.ndarray] = {}
            padded: Dict[int, np.ndarray] = {}
            for frame in encoded.frames:
                recon = self._decode_frame(frame, encoded, padded)
                if header.deblocking:
                    recon = deblock_frame(recon, frame.header.base_qp)
                reconstructed[frame.header.display_index] = recon
                padded[frame.header.display_index] = pad_reference(recon, pad)
            frames = [reconstructed[i] for i in range(header.num_frames)]
            return VideoSequence(frames, fps=header.fps)

    def _validate_structure(self, encoded: EncodedVideo) -> None:
        """Reject streams whose *precise* metadata is inconsistent.

        The paper stores headers precisely, so a well-formed store never
        trips these; they exist so that a damaged or hostile container
        fails with the codec's own error type instead of surfacing
        internal ``KeyError``/``ZeroDivisionError`` artifacts (the
        decoder's no-crash contract, exercised by :mod:`repro.fuzz`).
        """
        header = encoded.header
        if header.width <= 0 or header.height <= 0:
            raise BitstreamError(
                f"empty frame geometry {header.width}x{header.height}"
            )
        if header.width % MACROBLOCK_SIZE or header.height % MACROBLOCK_SIZE:
            raise BitstreamError(
                f"frame geometry {header.width}x{header.height} is not a "
                f"multiple of the macroblock size {MACROBLOCK_SIZE}"
            )
        if not np.isfinite(header.fps) or header.fps <= 0:
            raise BitstreamError(f"invalid frame rate {header.fps}")
        mb_rows = header.height // MACROBLOCK_SIZE
        displays = []
        for frame in encoded.frames:
            fh = frame.header
            num_slices = len(fh.slice_byte_lengths)
            if not 1 <= num_slices <= mb_rows:
                raise BitstreamError(
                    f"frame {fh.coded_index}: {num_slices} slices cannot "
                    f"tile {mb_rows} macroblock rows"
                )
            displays.append(fh.display_index)
        if sorted(displays) != list(range(header.num_frames)):
            raise BitstreamError(
                "frame display indices do not cover "
                f"0..{header.num_frames - 1}"
            )

    def _new_entropy_decoder(self, payload: bytes,
                             coder: EntropyCoder):
        if coder == EntropyCoder.CABAC:
            return CabacDecoder(payload, self._model.total_contexts)
        return CavlcDecoder(payload, self._model.total_contexts)

    def _references(self, frame: EncodedFrame,
                    padded: Dict[int, np.ndarray]) -> ReferenceSet:
        references: ReferenceSet = {}
        fh = frame.header
        if fh.ref_forward is not None and fh.ref_forward in padded:
            references[PredictionDirection.FORWARD] = padded[fh.ref_forward]
        if fh.ref_backward is not None and fh.ref_backward in padded:
            references[PredictionDirection.BACKWARD] = padded[fh.ref_backward]
        return references

    def _decode_frame(self, frame: EncodedFrame, encoded: EncodedVideo,
                      padded: Dict[int, np.ndarray]) -> np.ndarray:
        fh = frame.header
        with obs_trace.span("decode.frame", coded_index=fh.coded_index,
                            frame_type=fh.frame_type.name):
            stages = obs_trace.stage_clock()
            recon = self._decode_frame_body(frame, encoded, padded, stages)
            stages.emit()
            return recon

    def _decode_frame_body(self, frame: EncodedFrame, encoded: EncodedVideo,
                           padded: Dict[int, np.ndarray], stages
                           ) -> np.ndarray:
        header = encoded.header
        fh = frame.header
        mb_rows = header.height // MACROBLOCK_SIZE
        mb_cols = header.width // MACROBLOCK_SIZE
        if fh.frame_type != FrameType.I and not padded:
            raise BitstreamError(
                f"frame {fh.coded_index} needs references but none decoded"
            )
        references = self._references(frame, padded)
        if fh.frame_type != FrameType.I and (
                PredictionDirection.FORWARD not in references):
            raise BitstreamError(
                f"frame {fh.coded_index}: forward reference "
                f"{fh.ref_forward} unavailable"
            )
        state = FrameMbState(mb_rows, mb_cols)
        recon = np.zeros((header.height, header.width), dtype=np.uint8)
        bands = slice_bands(mb_rows, len(fh.slice_byte_lengths))
        # Pass 1: entropy-decode every macroblock decision. This pass is
        # inherently sequential (adaptive contexts and neighbor state),
        # but it needs no pixels.
        mbs: List[Tuple[MacroblockDecision, int, int, int]] = []
        offset = 0
        with stages.time("decode.entropy"):
            for (start_row, end_row), length in zip(bands,
                                                    fh.slice_byte_lengths):
                payload = frame.payload[offset:offset + length]
                offset += length
                entropy = self._new_entropy_decoder(payload,
                                                    header.entropy_coder)
                state.start_slice(fh.base_qp)
                for mb_row in range(start_row, end_row):
                    for mb_col in range(mb_cols):
                        decision = decode_macroblock(
                            entropy, self._model, state, fh.frame_type,
                            mb_row, mb_col, start_row)
                        finalize_macroblock(state, decision, mb_row, mb_col)
                        mbs.append((decision, mb_row, mb_col, start_row))
        # Pass 2: one batched inverse transform for every coded residual
        # in the frame, then a sequential prediction sweep (intra
        # prediction reads reconstructed neighbor pixels).
        with stages.time("decode.reconstruct"):
            residuals = self._frame_residuals(mbs)
            pad = 0
            if references:
                reference = next(iter(references.values()))
                pad = (reference.shape[0] - recon.shape[0]) // 2
            for index, (decision, mb_row, mb_col, min_mb_row) in \
                    enumerate(mbs):
                prediction = build_prediction(decision, recon, references,
                                              pad, mb_row, mb_col,
                                              min_mb_row)
                top = mb_row * MACROBLOCK_SIZE
                left = mb_col * MACROBLOCK_SIZE
                recon[top:top + MACROBLOCK_SIZE,
                      left:left + MACROBLOCK_SIZE] = reconstruct_macroblock(
                          decision, prediction, residuals.get(index))
        return recon

    @staticmethod
    def _frame_residuals(
        mbs: List[Tuple[MacroblockDecision, int, int, int]],
    ) -> Dict[int, np.ndarray]:
        """Reconstruct every coded residual of a frame in one batch.

        Returns macroblock index (position in ``mbs``) -> 16x16 residual
        for macroblocks that carry coded coefficients; others are absent.
        """
        indices: List[int] = []
        stacks: List[np.ndarray] = []
        qps: List[int] = []
        for index, (decision, _, _, _) in enumerate(mbs):
            if decision.coefficients is not None and any(decision.cbp):
                indices.append(index)
                stacks.append(decision.coefficients)
                qps.append(decision.qp)
        if not indices:
            return {}
        residuals = reconstruct_residuals_many(np.stack(stacks), qps)
        return {index: residuals[i] for i, index in enumerate(indices)}
