"""The video decoder.

Mirrors the encoder exactly on clean streams and decodes corrupted
streams best-effort, the way the paper's methodology requires:

* precise frame headers let it locate every frame and slice payload, so
  it always resynchronizes at slice boundaries (entropy contexts reset);
* within a corrupted slice it misinterprets rather than fails — all
  syntax values are clamped to legal ranges, all compensation accesses
  are clamped into the padded reference;
* damage propagates exactly like in a real decoder: through entropy
  desynchronization and context corruption within the slice, and through
  motion-compensated references across frames.

When the storage layer *knows* a byte range is unreadable (a detected-
uncorrectable ECC block that survived the retry ladder), the decoder
can do better than decoding the garbage — but only where garbage is
actually expensive. With ``conceal_uncorrectable=True`` it accepts a
damage map and **salvages then conceals** every *I* slice the damage
touches: macroblocks decoded entirely from bits before the first
damaged bit are kept (they are provably bit-identical to the clean
decode), and the rest of the band is concealed — copied from the
nearest previously decoded frame (temporal concealment); only the very
first frame, with no temporal source at all, interpolates vertically
between the reconstructed border rows (128 mid-gray when no neighbor
exists). Damaged *P/B* slices are left to the ordinary best-effort
decode: the hardened entropy layer misinterprets locally instead of
failing, and paired measurements show that decode beating or tying
co-located temporal copy (which pays the full motion error), while
concealing I bands — whose garbage intra decode anchors a whole GOP —
wins clearly. Slices are self-contained (contexts reset, intra
prediction clamped to the slice), so concealing one never
desynchronizes its neighbors. The flag defaults to off and the damage
map to ``None``, in which case decoding is bit-identical to the
paper-faithful path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BitstreamError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..video.frame import MACROBLOCK_SIZE, VideoSequence
from .cabac import CabacDecoder
from .cavlc import CavlcDecoder
from .config import EntropyCoder
from .contexts import DEFAULT_CONTEXT_MODEL
from .deblock import deblock_frame
from .encoded import EncodedFrame, EncodedVideo
from .encoder import slice_bands
from .motion import pad_reference
from .neighbors import FrameMbState
from .reconstruct import ReferenceSet, build_prediction, reconstruct_macroblock
from .syntax import decode_macroblock, finalize_macroblock
from .transform import reconstruct_residuals_many
from .types import (
    FrameType,
    MacroblockDecision,
    PredictionDirection,
)


#: Half-open bit ranges within one frame payload marked unreadable.
DamageRanges = Sequence[Tuple[int, int]]

#: Frame position in the container -> that frame's damage ranges.
DamageMap = Dict[int, DamageRanges]

#: Default ceiling on the pixel volume (width x height x frames) a
#: container may *declare* before decode refuses it. Decode time and
#: memory scale with the declared geometry — not with the payload bytes
#: actually present — so a corrupted or hostile header claiming a
#: gigantic resolution would otherwise drive unbounded allocation. The
#: default admits the paper's largest workload (720p x 600 frames is
#: ~5.5e8 pixels) with an order of magnitude to spare; callers decoding
#: legitimately bigger streams raise the limit per instance.
MAX_DECLARED_PIXELS = 1 << 32


class Decoder:
    """H.264-like decoder; robust against corrupted payloads.

    ``conceal_uncorrectable`` arms the error-concealment path: I slices
    touched by ``damage`` entries (see :meth:`decode`) salvage their
    clean prefix and conceal the rest of their band instead of decoding
    known garbage; damaged P/B slices still decode best-effort (see the
    module docstring for the measured rationale). Off by default — the
    default construction decodes bit-identically to the original
    decoder.
    """

    def __init__(self, conceal_uncorrectable: bool = False,
                 max_declared_pixels: int = MAX_DECLARED_PIXELS) -> None:
        self._model = DEFAULT_CONTEXT_MODEL
        self.conceal_uncorrectable = conceal_uncorrectable
        self.max_declared_pixels = int(max_declared_pixels)

    def decode(self, encoded: EncodedVideo,
               damage: Optional[DamageMap] = None) -> VideoSequence:
        """Decode to a display-order raw sequence.

        Raises :class:`BitstreamError` for structurally invalid streams
        (the precise headers are inconsistent); payload damage alone
        never raises — it decodes best-effort.

        ``damage`` maps a frame's position in ``encoded.frames`` to
        half-open ``(bit_start, bit_end)`` ranges of its payload known
        to be unreadable (:func:`repro.core.partition.map_stream_damage`
        produces exactly this). It is ignored unless the decoder was
        constructed with ``conceal_uncorrectable=True``.
        """
        header = encoded.header
        if len(encoded.frames) != header.num_frames:
            raise BitstreamError(
                f"header promises {header.num_frames} frames, "
                f"container has {len(encoded.frames)}"
            )
        self._validate_structure(encoded)
        if not self.conceal_uncorrectable:
            damage = None
        with obs_trace.span("decode", frames=header.num_frames):
            pad = header.search_range
            reconstructed: Dict[int, np.ndarray] = {}
            padded: Dict[int, np.ndarray] = {}
            for position, frame in enumerate(encoded.frames):
                frame_damage = damage.get(position) if damage else None
                recon = self._decode_frame(frame, encoded, padded,
                                           frame_damage)
                if header.deblocking:
                    recon = deblock_frame(recon, frame.header.base_qp)
                reconstructed[frame.header.display_index] = recon
                padded[frame.header.display_index] = pad_reference(recon, pad)
            frames = [reconstructed[i] for i in range(header.num_frames)]
            return VideoSequence(frames, fps=header.fps)

    # -- random access -----------------------------------------------------

    def decode_frame_at(self, encoded: EncodedVideo, display: int,
                        damage: Optional[DamageMap] = None) -> np.ndarray:
        """Decode display frame ``display`` without decoding the clip.

        Locates the nearest preceding I frame through the container's
        seek index (rebuilt from the precise frame headers when the
        embedded one is absent or damaged), decodes only that frame's
        dependency chain — the GOP's anchors up to the target, plus the
        backward anchor for a B target — and returns the single
        reconstructed frame.

        On a clean stream the result is bitwise identical to
        ``decode(encoded)[display]``: every chain frame sees exactly
        the references the full decode would have given it. ``damage``
        is honoured the same way as in :meth:`decode` (frame positions
        -> unreadable payload bit ranges) for the chain frames actually
        decoded; under concealment the partial decode may pick a
        different (sparser) temporal concealment source than the full
        decode, which is the documented cost of not decoding frames the
        chain does not need.

        A structurally inconsistent stream — reference cycles, refs the
        closure cannot resolve, no opening I frame — falls back to one
        full :meth:`decode` rather than failing where the sequential
        decoder would have succeeded.
        """
        frames = self.decode_range(encoded, display, display + 1,
                                   damage=damage)
        return frames.frames[0]

    def decode_range(self, encoded: EncodedVideo, start: int, stop: int,
                     damage: Optional[DamageMap] = None) -> VideoSequence:
        """Decode display frames ``[start, stop)`` via their dependency
        closure (see :meth:`decode_frame_at`)."""
        header = encoded.header
        if not 0 <= start < stop <= header.num_frames:
            raise BitstreamError(
                f"display range [{start}, {stop}) outside the "
                f"container's 0..{header.num_frames - 1}")
        if len(encoded.frames) != header.num_frames:
            raise BitstreamError(
                f"header promises {header.num_frames} frames, "
                f"container has {len(encoded.frames)}"
            )
        self._validate_structure(encoded)
        if not self.conceal_uncorrectable:
            damage = None
        targets = range(start, stop)
        with obs_trace.span("seek.decode", start=start, stop=stop):
            try:
                positions = dependency_closure(encoded, targets)
            except BitstreamError:
                positions = None
            if positions is None:
                # Index/reference structure unusable for a partial
                # decode: the sequential decoder is the authority.
                obs_metrics.counter("decode_seek_fallback_total").inc()
                full = self.decode(encoded, damage)
                return VideoSequence([full.frames[d] for d in targets],
                                     fps=header.fps)
            obs_metrics.counter("decode_seek_requests_total").inc()
            obs_metrics.counter("decode_seek_frames_decoded_total").inc(
                len(positions))
            obs_metrics.counter("decode_seek_frames_skipped_total").inc(
                len(encoded.frames) - len(positions))
            pad = header.search_range
            reconstructed: Dict[int, np.ndarray] = {}
            padded: Dict[int, np.ndarray] = {}
            try:
                for position in positions:
                    frame = encoded.frames[position]
                    frame_damage = (damage.get(position) if damage
                                    else None)
                    recon = self._decode_frame(frame, encoded, padded,
                                               frame_damage)
                    if header.deblocking:
                        recon = deblock_frame(recon, frame.header.base_qp)
                    reconstructed[frame.header.display_index] = recon
                    padded[frame.header.display_index] = \
                        pad_reference(recon, pad)
            except BitstreamError:
                # A chain the closure accepted but the frame decoder
                # rejects (hostile refs): same fallback as above.
                obs_metrics.counter("decode_seek_fallback_total").inc()
                full = self.decode(encoded, damage)
                return VideoSequence([full.frames[d] for d in targets],
                                     fps=header.fps)
            return VideoSequence([reconstructed[d] for d in targets],
                                 fps=header.fps)

    def _validate_structure(self, encoded: EncodedVideo) -> None:
        """Reject streams whose *precise* metadata is inconsistent.

        The paper stores headers precisely, so a well-formed store never
        trips these; they exist so that a damaged or hostile container
        fails with the codec's own error type instead of surfacing
        internal ``KeyError``/``ZeroDivisionError`` artifacts (the
        decoder's no-crash contract, exercised by :mod:`repro.fuzz`).
        """
        header = encoded.header
        if header.width <= 0 or header.height <= 0:
            raise BitstreamError(
                f"empty frame geometry {header.width}x{header.height}"
            )
        if header.width % MACROBLOCK_SIZE or header.height % MACROBLOCK_SIZE:
            raise BitstreamError(
                f"frame geometry {header.width}x{header.height} is not a "
                f"multiple of the macroblock size {MACROBLOCK_SIZE}"
            )
        if not np.isfinite(header.fps) or header.fps <= 0:
            raise BitstreamError(f"invalid frame rate {header.fps}")
        declared = (header.width * header.height
                    * max(1, header.num_frames))
        if declared > self.max_declared_pixels:
            # Resource guard (formerly only the fuzz harness's): decode
            # work is bounded by what the header *claims*, so absurd
            # declared geometry must be rejected before any per-frame
            # allocation happens, for every caller.
            raise BitstreamError(
                f"declared pixel volume {header.width}x{header.height}"
                f"x{header.num_frames} = {declared} exceeds the decoder "
                f"limit of {self.max_declared_pixels} (raise "
                f"max_declared_pixels to decode larger streams)")
        mb_rows = header.height // MACROBLOCK_SIZE
        displays = []
        for frame in encoded.frames:
            fh = frame.header
            num_slices = len(fh.slice_byte_lengths)
            if not 1 <= num_slices <= mb_rows:
                raise BitstreamError(
                    f"frame {fh.coded_index}: {num_slices} slices cannot "
                    f"tile {mb_rows} macroblock rows"
                )
            displays.append(fh.display_index)
        if sorted(displays) != list(range(header.num_frames)):
            raise BitstreamError(
                "frame display indices do not cover "
                f"0..{header.num_frames - 1}"
            )

    def _new_entropy_decoder(self, payload: bytes,
                             coder: EntropyCoder):
        if coder == EntropyCoder.CABAC:
            return CabacDecoder(payload, self._model.total_contexts)
        return CavlcDecoder(payload, self._model.total_contexts)

    def _references(self, frame: EncodedFrame,
                    padded: Dict[int, np.ndarray]) -> ReferenceSet:
        references: ReferenceSet = {}
        fh = frame.header
        if fh.ref_forward is not None and fh.ref_forward in padded:
            references[PredictionDirection.FORWARD] = padded[fh.ref_forward]
        if fh.ref_backward is not None and fh.ref_backward in padded:
            references[PredictionDirection.BACKWARD] = padded[fh.ref_backward]
        return references

    def _decode_frame(self, frame: EncodedFrame, encoded: EncodedVideo,
                      padded: Dict[int, np.ndarray],
                      damage: Optional[DamageRanges] = None) -> np.ndarray:
        fh = frame.header
        with obs_trace.span("decode.frame", coded_index=fh.coded_index,
                            frame_type=fh.frame_type.name):
            stages = obs_trace.stage_clock()
            recon = self._decode_frame_body(frame, encoded, padded, stages,
                                            damage)
            stages.emit()
            return recon

    @staticmethod
    def _first_damaged_bit(damage: Optional[DamageRanges], offset: int,
                           length: int) -> Optional[int]:
        """Slice-local position of the earliest damaged bit, or None.

        Payload bytes ``[offset, offset + length)`` hold the slice; the
        returned position is relative to the slice's first bit, so the
        salvage loop can compare it against the entropy decoder's
        consumed-bit count directly.
        """
        bit_lo, bit_hi = 8 * offset, 8 * (offset + length)
        hits = [max(start, bit_lo) - bit_lo for start, end in damage or ()
                if start < bit_hi and end > bit_lo]
        return min(hits) if hits else None

    def _decode_frame_body(self, frame: EncodedFrame, encoded: EncodedVideo,
                           padded: Dict[int, np.ndarray], stages,
                           damage: Optional[DamageRanges] = None
                           ) -> np.ndarray:
        header = encoded.header
        fh = frame.header
        mb_rows = header.height // MACROBLOCK_SIZE
        mb_cols = header.width // MACROBLOCK_SIZE
        if fh.frame_type != FrameType.I and not padded:
            raise BitstreamError(
                f"frame {fh.coded_index} needs references but none decoded"
            )
        references = self._references(frame, padded)
        if fh.frame_type != FrameType.I and (
                PredictionDirection.FORWARD not in references):
            raise BitstreamError(
                f"frame {fh.coded_index}: forward reference "
                f"{fh.ref_forward} unavailable"
            )
        state = FrameMbState(mb_rows, mb_cols)
        recon = np.zeros((header.height, header.width), dtype=np.uint8)
        bands = slice_bands(mb_rows, len(fh.slice_byte_lengths))
        # Pass 1: entropy-decode every macroblock decision. This pass is
        # inherently sequential (adaptive contexts and neighbor state),
        # but it needs no pixels.
        mbs: List[Tuple[MacroblockDecision, int, int, int]] = []
        concealed_bands: List[Tuple[int, int, int, int]] = []
        offset = 0
        with stages.time("decode.entropy"):
            for (start_row, end_row), length in zip(bands,
                                                    fh.slice_byte_lengths):
                payload = frame.payload[offset:offset + length]
                first_bad = self._first_damaged_bit(damage, offset, length)
                offset += length
                if first_bad is not None and fh.frame_type == FrameType.I:
                    # Storage reported this I slice partially unreadable:
                    # salvage the macroblocks decoded entirely from bits
                    # before the damage, then conceal from the first
                    # suspect macroblock to the end of the band instead
                    # of entropy-decoding known garbage. Unfinalized
                    # macroblocks are already treated as unavailable by
                    # neighboring slices. Damaged P/B slices fall through
                    # to the ordinary best-effort decode below.
                    stop = self._salvage_slice(
                        payload, header, state, fh, start_row, end_row,
                        mb_cols, first_bad, mbs)
                    if stop is not None:
                        concealed_bands.append((start_row, end_row) + stop)
                    continue
                entropy = self._new_entropy_decoder(payload,
                                                    header.entropy_coder)
                state.start_slice(fh.base_qp)
                for mb_row in range(start_row, end_row):
                    for mb_col in range(mb_cols):
                        decision = decode_macroblock(
                            entropy, self._model, state, fh.frame_type,
                            mb_row, mb_col, start_row)
                        finalize_macroblock(state, decision, mb_row, mb_col)
                        mbs.append((decision, mb_row, mb_col, start_row))
        # Pass 2: one batched inverse transform for every coded residual
        # in the frame, then a sequential prediction sweep (intra
        # prediction reads reconstructed neighbor pixels).
        with stages.time("decode.reconstruct"):
            residuals = self._frame_residuals(mbs)
            pad = 0
            if references:
                reference = next(iter(references.values()))
                pad = (reference.shape[0] - recon.shape[0]) // 2
            for index, (decision, mb_row, mb_col, min_mb_row) in \
                    enumerate(mbs):
                prediction = build_prediction(decision, recon, references,
                                              pad, mb_row, mb_col,
                                              min_mb_row)
                top = mb_row * MACROBLOCK_SIZE
                left = mb_col * MACROBLOCK_SIZE
                recon[top:top + MACROBLOCK_SIZE,
                      left:left + MACROBLOCK_SIZE] = reconstruct_macroblock(
                          decision, prediction, residuals.get(index))
            if concealed_bands:
                earlier = [d for d in padded if d < fh.display_index]
                source = padded[max(earlier)] if earlier else None
                self._conceal_bands(recon, concealed_bands, mb_cols, source)
        return recon

    def _salvage_slice(self, payload: bytes, header, state: FrameMbState,
                       fh, start_row: int, end_row: int, mb_cols: int,
                       first_bad: int,
                       mbs: List[Tuple[MacroblockDecision, int, int, int]],
                       ) -> Optional[Tuple[int, int]]:
        """Decode a damaged slice's clean prefix; report where it ends.

        Macroblocks are kept only while the entropy decoder's consumed-
        bit count stays at or before ``first_bad`` — those provably never
        saw a damaged bit, so they decode bit-identically to the clean
        stream. The first macroblock whose decode crosses the damage is
        discarded (``decode_macroblock`` never mutates ``state``; only
        ``finalize_macroblock`` does), and its raster position is
        returned as the concealment start. Returns ``None`` when every
        macroblock decoded clean — the damage sits entirely in the
        slice's padding bits and nothing needs concealing.
        """
        if first_bad <= 0:
            return start_row, 0
        entropy = self._new_entropy_decoder(payload, header.entropy_coder)
        state.start_slice(fh.base_qp)
        for mb_row in range(start_row, end_row):
            for mb_col in range(mb_cols):
                try:
                    decision = decode_macroblock(
                        entropy, self._model, state, fh.frame_type,
                        mb_row, mb_col, start_row)
                except BitstreamError:
                    return mb_row, mb_col
                if entropy.bits_consumed > first_bad:
                    return mb_row, mb_col
                finalize_macroblock(state, decision, mb_row, mb_col)
                mbs.append((decision, mb_row, mb_col, start_row))
        return None

    @staticmethod
    def _conceal_bands(recon: np.ndarray,
                       bands: List[Tuple[int, int, int, int]],
                       mb_cols: int,
                       source: Optional[np.ndarray] = None) -> None:
        """Fill the unreadable suffix of each damaged slice band.

        Each entry is ``(band_start_row, band_end_row, stop_row,
        stop_col)``: macroblocks from raster position ``(stop_row,
        stop_col)`` through the band's end were not salvaged and get
        concealed; macroblocks before it decoded clean and are kept.

        Concealed regions copy the co-located pixels from ``source`` —
        the nearest previously decoded display frame, padded like a
        reference (temporal concealment: a mid-stream I frame is
        content-continuous with its predecessor, so the co-located
        patch is the best zero-information guess). Only with no
        temporal source at all (the very first frame) do regions
        interpolate vertically between the reconstructed rows bordering
        the band (spatial neighbor concealment), degrading to DC
        extension of whichever border row exists and to mid-gray 128
        when neither does. Bands are filled top-down, so an
        already-filled band above counts as a neighbor; a still-
        unfilled concealed band below does not.
        """
        forward = source
        ordered = sorted(bands)
        concealed_rows = {row for _, end, stop, _ in ordered
                          for row in range(stop, end)}
        width = recon.shape[1]
        concealed_mbs = 0
        for _, end_row, stop_row, stop_col in ordered:
            bottom = end_row * MACROBLOCK_SIZE
            concealed_mbs += (end_row - stop_row) * mb_cols - stop_col
            # The concealed region: a partial first macroblock row from
            # stop_col onward, then full rows to the band's end.
            rects = []
            top = stop_row * MACROBLOCK_SIZE
            if stop_col:
                rects.append((top, top + MACROBLOCK_SIZE,
                              stop_col * MACROBLOCK_SIZE))
                top += MACROBLOCK_SIZE
            if top < bottom:
                rects.append((top, bottom, 0))
            if forward is not None:
                pad = (forward.shape[0] - recon.shape[0]) // 2
                for r_top, r_bottom, left in rects:
                    recon[r_top:r_bottom, left:] = forward[
                        pad + r_top:pad + r_bottom, pad + left:pad + width]
                continue
            top = stop_row * MACROBLOCK_SIZE
            above = recon[top - 1].astype(np.float64) if top > 0 else None
            below = None
            if bottom < recon.shape[0] and end_row not in concealed_rows:
                below = recon[bottom].astype(np.float64)
            height = bottom - top
            if above is not None and below is not None:
                weights = ((np.arange(height) + 1.0)
                           / (height + 1.0))[:, None]
                fill = (1.0 - weights) * above[None, :] \
                    + weights * below[None, :]
            elif above is not None:
                fill = np.broadcast_to(above[None, :], (height, width))
            elif below is not None:
                fill = np.broadcast_to(below[None, :], (height, width))
            else:
                fill = np.full((height, width), 128.0)
            fill = np.clip(np.rint(fill), 0, 255).astype(np.uint8)
            for r_top, r_bottom, left in rects:
                recon[r_top:r_bottom, left:] = fill[
                    r_top - top:r_bottom - top, left:]
        obs_metrics.counter("decode_concealed_slices_total").inc(len(bands))
        obs_metrics.counter("decode_concealed_mbs_total").inc(concealed_mbs)

    @staticmethod
    def _frame_residuals(
        mbs: List[Tuple[MacroblockDecision, int, int, int]],
    ) -> Dict[int, np.ndarray]:
        """Reconstruct every coded residual of a frame in one batch.

        Returns macroblock index (position in ``mbs``) -> 16x16 residual
        for macroblocks that carry coded coefficients; others are absent.
        """
        indices: List[int] = []
        stacks: List[np.ndarray] = []
        qps: List[int] = []
        for index, (decision, _, _, _) in enumerate(mbs):
            if decision.coefficients is not None and any(decision.cbp):
                indices.append(index)
                stacks.append(decision.coefficients)
                qps.append(decision.qp)
        if not indices:
            return {}
        residuals = reconstruct_residuals_many(np.stack(stacks), qps)
        return {index: residuals[i] for i, index in enumerate(indices)}


def dependency_closure(encoded: EncodedVideo,
                       targets: Sequence[int]) -> List[int]:
    """Container positions (coded order) a display set depends on.

    Walks ``ref_forward``/``ref_backward`` display references from
    the targets until they terminate in I frames, exactly the
    closure the sequential decode would have made available.
    Raises :class:`BitstreamError` on unresolvable references; callers
    treat that as "use the full decode". The storage layer uses the
    same closure to decide which byte ranges to fetch, so fetch plans
    and decode workloads can never disagree.
    """
    index = encoded.seek_index_or_build()
    by_display = index.display_to_coded
    needed: set = set()
    worklist = list(targets)
    while worklist:
        display = worklist.pop()
        if display in needed:
            continue
        if not 0 <= display < len(by_display):
            raise BitstreamError(
                f"reference display {display} outside the container")
        needed.add(display)
        fh = encoded.frames[by_display[display]].header
        if fh.display_index != display:
            raise BitstreamError(
                f"seek mapping for display {display} points at "
                f"display {fh.display_index}")
        for ref in (fh.ref_forward, fh.ref_backward):
            if ref is not None:
                worklist.append(ref)
        if len(needed) > len(encoded.frames):
            raise BitstreamError("reference closure does not close")
    # Every reference must be decoded before its dependent; coded
    # order guarantees that for encoder-produced streams, and the
    # per-frame decode re-checks it for hostile ones.
    return sorted(by_display[d] for d in needed)
