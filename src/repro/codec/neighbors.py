"""Per-frame macroblock state shared by encoder and decoder.

Context-adaptive coding and predictive metadata coding both condition on
the state of already-coded neighboring macroblocks. Encoder and decoder
must maintain this state identically — and this module being their
*single* implementation is what guarantees that. It is also the paper's
error-propagation vehicle: when a corrupted stream makes the decoder's
state diverge, every later context selection and metadata prediction in
the slice diverges with it (Figure 2).

Slices never predict across their boundary: all availability checks take
the slice's first MB row, and the left neighbor stops at column 0.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .types import MacroblockMode, MotionVector


class FrameMbState:
    """Mutable per-macroblock bookkeeping for one frame.

    Plain Python lists, not numpy arrays: every macroblock does a
    handful of scalar neighbor lookups, and list indexing is several
    times cheaper than numpy scalar indexing at that grain.
    """

    #: Sentinel mode for not-yet-coded macroblocks.
    UNSET = -1

    def __init__(self, mb_rows: int, mb_cols: int) -> None:
        self.mb_rows = mb_rows
        self.mb_cols = mb_cols
        self.modes: List[List[int]] = [
            [self.UNSET] * mb_cols for _ in range(mb_rows)]
        self.mvs: List[List[Tuple[int, int]]] = [
            [(0, 0)] * mb_cols for _ in range(mb_rows)]
        self.nnz: List[List[int]] = [
            [0] * mb_cols for _ in range(mb_rows)]
        self.last_dqp_nonzero = False
        self.prev_qp = 0  # seeded with the slice QP at slice start

    # -- recording -------------------------------------------------------

    def record(self, mb_row: int, mb_col: int, mode: MacroblockMode,
               mv: MotionVector, qp: int, dqp: int, nnz: int) -> None:
        """Store the outcome of one coded macroblock."""
        self.modes[mb_row][mb_col] = int(mode)
        self.mvs[mb_row][mb_col] = (mv.dy, mv.dx)
        self.nnz[mb_row][mb_col] = nnz
        self.last_dqp_nonzero = dqp != 0
        self.prev_qp = qp

    def start_slice(self, slice_qp: int) -> None:
        self.prev_qp = slice_qp
        self.last_dqp_nonzero = False

    # -- availability ------------------------------------------------------

    def _available(self, mb_row: int, mb_col: int, min_mb_row: int) -> bool:
        return (
            min_mb_row <= mb_row < self.mb_rows
            and 0 <= mb_col < self.mb_cols
            and self.modes[mb_row][mb_col] != self.UNSET
        )

    def _mode_at(self, mb_row: int, mb_col: int,
                 min_mb_row: int) -> Optional[int]:
        if (min_mb_row <= mb_row < self.mb_rows
                and 0 <= mb_col < self.mb_cols):
            mode = self.modes[mb_row][mb_col]
            if mode != self.UNSET:
                return mode
        return None

    # -- metadata prediction ----------------------------------------------

    def predict_mv(self, mb_row: int, mb_col: int,
                   min_mb_row: int) -> MotionVector:
        """Median motion-vector prediction from neighbors A, B, C.

        A = left, B = above, C = above-right (falling back to above-left
        as H.264 does when C is unavailable). As in H.264: when exactly
        one neighbor is inter-coded its vector is used directly;
        otherwise the component-wise median is taken with intra or
        unavailable neighbors contributing (0, 0).
        """
        positions = [
            (mb_row, mb_col - 1),       # A
            (mb_row - 1, mb_col),       # B
            (mb_row - 1, mb_col + 1),   # C
        ]
        if not self._available(*positions[2], min_mb_row):
            positions[2] = (mb_row - 1, mb_col - 1)  # D fallback
        candidates: List[MotionVector] = []
        inter_vectors: List[MotionVector] = []
        for row, col in positions:
            mode = self._mode_at(row, col, min_mb_row)
            if mode in (int(MacroblockMode.INTER), int(MacroblockMode.SKIP)):
                mv = self.mvs[row][col]
                vector = MotionVector(mv[0], mv[1])
                candidates.append(vector)
                inter_vectors.append(vector)
            else:
                candidates.append(MotionVector(0, 0))
        if not inter_vectors:
            return MotionVector(0, 0)
        if len(inter_vectors) == 1:
            return inter_vectors[0]
        dys = sorted(c.dy for c in candidates)
        dxs = sorted(c.dx for c in candidates)
        return MotionVector(dys[1], dxs[1])

    # -- context variant selection ------------------------------------------

    def _neighbor_modes(self, mb_row: int, mb_col: int,
                        min_mb_row: int) -> List[Optional[int]]:
        return [
            self._mode_at(mb_row, mb_col - 1, min_mb_row),
            self._mode_at(mb_row - 1, mb_col, min_mb_row),
        ]

    def skip_context(self, mb_row: int, mb_col: int, min_mb_row: int) -> int:
        """0..2: number of A/B neighbors coded as skip."""
        modes = self._neighbor_modes(mb_row, mb_col, min_mb_row)
        return sum(1 for m in modes if m == int(MacroblockMode.SKIP))

    def intra_context(self, mb_row: int, mb_col: int, min_mb_row: int) -> int:
        """0..2: number of A/B neighbors coded as intra."""
        modes = self._neighbor_modes(mb_row, mb_col, min_mb_row)
        return sum(1 for m in modes if m == int(MacroblockMode.INTRA))

    def partition_context(self, mb_row: int, mb_col: int,
                          min_mb_row: int) -> int:
        """0..2: number of A/B neighbors coded as (non-skip) inter."""
        modes = self._neighbor_modes(mb_row, mb_col, min_mb_row)
        return sum(1 for m in modes if m == int(MacroblockMode.INTER))

    def mvd_context(self, mb_row: int, mb_col: int, min_mb_row: int) -> int:
        """0..2: bucket of neighboring motion activity (H.264's ctx rule
        uses neighbor |mvd|; we bucket stored |mv| which adapts the same
        way)."""
        total = 0
        for row, col in ((mb_row, mb_col - 1), (mb_row - 1, mb_col)):
            if self._available(row, col, min_mb_row):
                mv = self.mvs[row][col]
                total += abs(mv[0]) + abs(mv[1])
        if total < 3:
            return 0
        if total < 32:
            return 1
        return 2

    def dqp_context(self) -> int:
        """0/1: whether the previous MB changed QP."""
        return 1 if self.last_dqp_nonzero else 0

    def nnz_context(self, mb_row: int, mb_col: int, min_mb_row: int) -> int:
        """0..2: bucket of neighboring residual density."""
        total = 0
        for row, col in ((mb_row, mb_col - 1), (mb_row - 1, mb_col)):
            if self._available(row, col, min_mb_row):
                total += self.nnz[row][col]
        if total == 0:
            return 0
        if total < 16:
            return 1
        return 2
