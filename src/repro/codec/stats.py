"""Bitstream inspection: per-frame coding statistics.

A lightweight parser that walks an encoded video through the syntax
layer only — neighbor state evolves exactly as in the decoder, but no
pixels are reconstructed — and tallies what the encoder actually did:
macroblock modes, intra directions, partition shapes, prediction
directions, motion magnitudes, QPs, and residual density.

Useful for understanding content (why does clip X compress worse?) and
heavily used by tests to assert encoder behaviour without reaching into
its internals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .cabac import CabacDecoder
from .cavlc import CavlcDecoder
from .config import EntropyCoder
from .contexts import DEFAULT_CONTEXT_MODEL
from .encoded import EncodedVideo
from .encoder import slice_bands
from .neighbors import FrameMbState
from .syntax import decode_macroblock, finalize_macroblock
from .types import FrameType, MacroblockMode


@dataclass
class FrameStats:
    """Coding statistics of one frame."""

    coded_index: int
    display_index: int
    frame_type: FrameType
    payload_bits: int
    modes: Counter = field(default_factory=Counter)
    intra_modes: Counter = field(default_factory=Counter)
    partition_types: Counter = field(default_factory=Counter)
    directions: Counter = field(default_factory=Counter)
    qp_values: List[int] = field(default_factory=list)
    total_nonzero_coefficients: int = 0
    total_mv_magnitude: int = 0
    inter_partitions: int = 0

    @property
    def macroblocks(self) -> int:
        return sum(self.modes.values())

    @property
    def skip_fraction(self) -> float:
        if not self.macroblocks:
            return 0.0
        return self.modes.get(MacroblockMode.SKIP, 0) / self.macroblocks

    @property
    def intra_fraction(self) -> float:
        if not self.macroblocks:
            return 0.0
        return self.modes.get(MacroblockMode.INTRA, 0) / self.macroblocks

    @property
    def mean_qp(self) -> float:
        return float(np.mean(self.qp_values)) if self.qp_values else 0.0

    @property
    def mean_mv_magnitude(self) -> float:
        if not self.inter_partitions:
            return 0.0
        return self.total_mv_magnitude / self.inter_partitions


@dataclass
class VideoStats:
    """Coding statistics of a whole encoded video."""

    frames: List[FrameStats]

    def bits_by_frame_type(self) -> Dict[FrameType, int]:
        totals: Dict[FrameType, int] = {}
        for frame in self.frames:
            totals[frame.frame_type] = (totals.get(frame.frame_type, 0)
                                        + frame.payload_bits)
        return totals

    def mode_distribution(self) -> Counter:
        combined: Counter = Counter()
        for frame in self.frames:
            combined.update(frame.modes)
        return combined

    @property
    def total_payload_bits(self) -> int:
        return sum(frame.payload_bits for frame in self.frames)


def inspect_video(encoded: EncodedVideo) -> VideoStats:
    """Parse every macroblock of an encoded video and tally statistics.

    Works on clean streams (a corrupted stream parses too, but its
    statistics describe the misinterpretation, not the encoder).
    """
    model = DEFAULT_CONTEXT_MODEL
    header = encoded.header
    mb_rows = header.height // 16
    mb_cols = header.width // 16
    decoder_cls = (CabacDecoder if header.entropy_coder == EntropyCoder.CABAC
                   else CavlcDecoder)
    stats: List[FrameStats] = []
    for frame in encoded.frames:
        fh = frame.header
        frame_stats = FrameStats(
            coded_index=fh.coded_index,
            display_index=fh.display_index,
            frame_type=fh.frame_type,
            payload_bits=frame.payload_bits,
        )
        state = FrameMbState(mb_rows, mb_cols)
        bands = slice_bands(mb_rows, len(fh.slice_byte_lengths))
        offset = 0
        for (start_row, end_row), length in zip(bands,
                                                fh.slice_byte_lengths):
            payload = frame.payload[offset:offset + length]
            offset += length
            entropy = decoder_cls(payload, model.total_contexts)
            state.start_slice(fh.base_qp)
            for mb_row in range(start_row, end_row):
                for mb_col in range(mb_cols):
                    decision = decode_macroblock(
                        entropy, model, state, fh.frame_type, mb_row,
                        mb_col, start_row)
                    frame_stats.modes[decision.mode] += 1
                    frame_stats.qp_values.append(decision.qp)
                    if decision.mode == MacroblockMode.INTRA:
                        frame_stats.intra_modes[decision.intra_mode] += 1
                    elif decision.mode == MacroblockMode.INTER:
                        frame_stats.partition_types[
                            decision.partition_type] += 1
                        for partition in decision.partitions:
                            frame_stats.directions[partition.direction] += 1
                            frame_stats.total_mv_magnitude += \
                                partition.mv.magnitude
                            frame_stats.inter_partitions += 1
                    if decision.coefficients is not None:
                        frame_stats.total_nonzero_coefficients += int(
                            np.count_nonzero(decision.coefficients))
                    finalize_macroblock(state, decision, mb_row, mb_col)
        stats.append(frame_stats)
    return VideoStats(frames=stats)
