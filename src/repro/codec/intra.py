"""16x16 intra prediction (DC / vertical / horizontal).

Intra prediction extrapolates a macroblock from the reconstructed pixels
of its already-decoded neighbors: the row directly above and the column
directly to the left. These pixel dependencies are exactly the
intra-frame compensation edges VideoApp models (Figure 4's MB B example),
so each predictor also reports which neighbor MBs supplied pixels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import EncoderError
from .types import MB_SIZE, DependencyRecord, IntraMode


def _border_pixels(reconstructed: np.ndarray, mb_row: int, mb_col: int
                   ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """(row above, column left) of reconstructed border pixels, or None."""
    top = mb_row * MB_SIZE
    left = mb_col * MB_SIZE
    above = reconstructed[top - 1, left:left + MB_SIZE] if mb_row > 0 else None
    left_col = (reconstructed[top:top + MB_SIZE, left - 1]
                if mb_col > 0 else None)
    return above, left_col


#: Plane-mode gradient taps and pixel coordinates, hoisted out of the
#: per-macroblock hot path.
_PLANE_TAPS = np.arange(1, 9, dtype=np.int64)
_PLANE_XS = np.arange(MB_SIZE, dtype=np.int64) - 7


def predict_intra(reconstructed: np.ndarray, mb_row: int, mb_col: int,
                  mode: IntraMode,
                  min_mb_row: int = 0) -> np.ndarray:
    """Build the 16x16 intra prediction for one macroblock.

    ``reconstructed`` is the partially reconstructed current frame
    (uint8); only pixels above/left of the MB are read. ``min_mb_row``
    masks availability at a slice boundary: MB rows above it are treated
    as outside the slice (H.264 slices do not predict across slices).
    Unavailable borders fall back to the mid-gray 128, as in H.264.
    """
    above, left_col = _border_pixels(reconstructed, mb_row, mb_col)
    if mb_row == min_mb_row:
        # MB sits on the slice's first row: the row above is another slice.
        above = None
    if mode == IntraMode.VERTICAL:
        if above is None:
            return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
        return np.repeat(above[np.newaxis, :], MB_SIZE, axis=0)
    if mode == IntraMode.HORIZONTAL:
        if left_col is None:
            return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
        return np.repeat(left_col[:, np.newaxis], MB_SIZE, axis=1)
    if mode == IntraMode.DC:
        if above is None and left_col is None:
            return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
        mean = _dc_value(above, left_col)
        return np.full((MB_SIZE, MB_SIZE), np.uint8(mean), dtype=np.uint8)
    if mode == IntraMode.PLANE:
        # H.264 Intra_16x16 Plane: a linear gradient fitted to the above
        # row and left column. Needs both borders plus the corner; a
        # corrupted stream can request it without them, in which case we
        # fall back to mid-gray like the other modes.
        if above is None or left_col is None or mb_row == 0 or mb_col == 0:
            return np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
        return _plane_prediction(reconstructed, above, left_col,
                                 mb_row, mb_col)
    raise EncoderError(f"unknown intra mode {mode!r}")


def _dc_value(above: Optional[np.ndarray],
              left_col: Optional[np.ndarray]) -> int:
    """Rounded mean of the available borders (at least one present).

    The pixel count is a power of two, so the division is exact and the
    rounded mean matches np.mean over the concatenated borders.
    """
    total = 0
    count = 0
    if above is not None:
        total += int(above.sum())
        count += MB_SIZE
    if left_col is not None:
        total += int(left_col.sum())
        count += MB_SIZE
    return int(round(total / count))


def _plane_prediction(reconstructed: np.ndarray, above: np.ndarray,
                      left_col: np.ndarray, mb_row: int,
                      mb_col: int) -> np.ndarray:
    """PLANE prediction given both borders (availability pre-checked)."""
    top = mb_row * MB_SIZE
    left = mb_col * MB_SIZE
    corner = int(reconstructed[top - 1, left - 1])
    above_ext = np.concatenate([[corner], above.astype(np.int64)])
    left_ext = np.concatenate([[corner], left_col.astype(np.int64)])
    taps = _PLANE_TAPS
    # above_ext[8 + x] - above_ext[8 - x] for x = 1..8 (0-indexed
    # offset by the prepended corner).
    h_grad = int(np.sum(taps * (above_ext[8 + taps] - above_ext[8 - taps])))
    v_grad = int(np.sum(taps * (left_ext[8 + taps] - left_ext[8 - taps])))
    slope_x = (5 * h_grad + 32) >> 6
    slope_y = (5 * v_grad + 32) >> 6
    base = 16 * (int(above[15]) + int(left_col[15]))
    xs = _PLANE_XS
    plane = (base + slope_x * xs[np.newaxis, :]
             + slope_y * xs[:, np.newaxis] + 16) >> 5
    return np.clip(plane, 0, 255).astype(np.uint8)


def intra_dependencies(frame_coded_index: int, mb_row: int, mb_col: int,
                       mb_cols: int, mode: IntraMode,
                       min_mb_row: int = 0) -> List[DependencyRecord]:
    """Pixel-source dependencies created by one intra prediction.

    Returns records naming the neighbor MBs (within the same frame) whose
    reconstructed pixels feed this MB's prediction, with pixel counts.
    The whole 16x16 block (256 pixels) is attributed to its border
    sources proportionally, matching VideoApp's weighting rule.
    """
    def mb_index(row: int, col: int) -> int:
        return row * mb_cols + col

    has_above = mb_row > min_mb_row
    has_left = mb_col > 0
    # (source MB, border pixels contributed) for the available borders.
    sources: List[tuple] = []
    if mode == IntraMode.VERTICAL and has_above:
        sources = [(mb_index(mb_row - 1, mb_col), 16)]
    elif mode == IntraMode.HORIZONTAL and has_left:
        sources = [(mb_index(mb_row, mb_col - 1), 16)]
    elif mode == IntraMode.DC:
        if has_above:
            sources.append((mb_index(mb_row - 1, mb_col), 16))
        if has_left:
            sources.append((mb_index(mb_row, mb_col - 1), 16))
    elif mode == IntraMode.PLANE and has_above and has_left:
        sources = [
            (mb_index(mb_row - 1, mb_col), 16),
            (mb_index(mb_row, mb_col - 1), 16),
            (mb_index(mb_row - 1, mb_col - 1), 1),  # corner pixel
        ]
    if not sources:
        return []
    # Distribute the MB's 256 predicted pixels proportionally to the
    # border pixels each source supplies, preserving the exact total.
    total_border = sum(weight for _src, weight in sources)
    deps: List[DependencyRecord] = []
    assigned = 0
    for position, (src, weight) in enumerate(sources):
        if position == len(sources) - 1:
            share = MB_SIZE * MB_SIZE - assigned
        else:
            share = round(MB_SIZE * MB_SIZE * weight / total_border)
            assigned += share
        deps.append(DependencyRecord(source=(frame_coded_index, src),
                                     pixels=share))
    return deps


#: Mode evaluation order; ties resolve to the earliest entry, exactly
#: like the scalar strict-less-than scan this batched selection replaced.
MODE_ORDER = (IntraMode.DC, IntraMode.VERTICAL, IntraMode.HORIZONTAL,
              IntraMode.PLANE)


def choose_intra_mode(source_mb: np.ndarray, reconstructed: np.ndarray,
                      mb_row: int, mb_col: int,
                      min_mb_row: int = 0) -> Tuple[IntraMode, np.ndarray, float]:
    """Pick the intra mode with the lowest SAD against ``source_mb``.

    SADs are computed straight from the border pixels — the constant
    rows/columns of the DC/V/H predictions never get materialized, and
    only the winner's 16x16 prediction is built. The winner (first
    minimum in :data:`MODE_ORDER`) and every SAD are identical to
    scoring fully-built predictions per mode. Returns
    (mode, prediction, sad).
    """
    above, left_col = _border_pixels(reconstructed, mb_row, mb_col)
    if mb_row == min_mb_row:
        above = None
    current = source_mb.astype(np.int32)
    sad_flat = int(np.abs(current - 128).sum())

    if above is None and left_col is None:
        sad_dc = sad_flat
        dc_value = 128
    else:
        dc_value = _dc_value(above, left_col)
        sad_dc = int(np.abs(current - dc_value).sum())
    sad_v = (sad_flat if above is None
             else int(np.abs(current - above.astype(np.int32)).sum()))
    sad_h = (sad_flat if left_col is None
             else int(np.abs(current
                             - left_col.astype(np.int32)[:, None]).sum()))
    plane = None
    if (above is None or left_col is None or mb_row == 0 or mb_col == 0):
        sad_p = sad_flat
    else:
        plane = _plane_prediction(reconstructed, above, left_col,
                                  mb_row, mb_col)
        sad_p = int(np.abs(current - plane.astype(np.int32)).sum())

    sads = (sad_dc, sad_v, sad_h, sad_p)
    pick = min(range(len(MODE_ORDER)), key=sads.__getitem__)
    mode = MODE_ORDER[pick]
    if mode == IntraMode.DC:
        prediction = np.full((MB_SIZE, MB_SIZE), np.uint8(dc_value),
                             dtype=np.uint8)
    elif mode == IntraMode.VERTICAL:
        prediction = (np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
                      if above is None
                      else np.repeat(above[np.newaxis, :], MB_SIZE, axis=0))
    elif mode == IntraMode.HORIZONTAL:
        prediction = (np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
                      if left_col is None
                      else np.repeat(left_col[:, np.newaxis], MB_SIZE,
                                     axis=1))
    else:
        prediction = (np.full((MB_SIZE, MB_SIZE), 128, dtype=np.uint8)
                      if plane is None else plane)
    return mode, prediction, float(sads[pick])
