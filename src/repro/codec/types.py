"""Core codec data types: frame kinds, prediction modes, macroblock records.

These types are shared by the encoder, the decoder, and the VideoApp
analysis (which consumes the per-macroblock trace records emitted during
encoding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

MB_SIZE = 16


class FrameType(enum.IntEnum):
    """H.264 coded frame kinds."""

    I = 0  #: self-contained; intra prediction only (checkpoint frames)
    P = 1  #: predicted from one earlier reference frame
    B = 2  #: predicted from an earlier and a later reference frame


class MacroblockMode(enum.IntEnum):
    """Top-level prediction choice for one macroblock."""

    SKIP = 0   #: inter, predicted motion vector, no residual
    INTER = 1  #: motion-compensated with coded partitions and residual
    INTRA = 2  #: spatially predicted from neighbors within the frame


class IntraMode(enum.IntEnum):
    """16x16 intra prediction modes (H.264's four)."""

    DC = 0        #: mean of available border pixels
    VERTICAL = 1  #: each column copies the pixel above the macroblock
    HORIZONTAL = 2  #: each row copies the pixel left of the macroblock
    PLANE = 3     #: linear plane fitted to the above row and left column


class PartitionType(enum.IntEnum):
    """Macroblock-level inter partition layouts."""

    P16x16 = 0
    P16x8 = 1
    P8x16 = 2
    P8x8 = 3  #: each 8x8 quadrant further chooses a SubPartitionType


class SubPartitionType(enum.IntEnum):
    """8x8 sub-macroblock partition layouts."""

    S8x8 = 0
    S8x4 = 1
    S4x8 = 2
    S4x4 = 3


class PredictionDirection(enum.IntEnum):
    """Reference pick for one inter partition (B-frames)."""

    FORWARD = 0   #: reference list 0 (earlier anchor)
    BACKWARD = 1  #: reference list 1 (later anchor, coded earlier)
    BIDIRECTIONAL = 2  #: average of both references (B-frames)


#: Partition rectangles (offset_y, offset_x, height, width) within the MB.
PARTITION_RECTS: Dict[PartitionType, Tuple[Tuple[int, int, int, int], ...]] = {
    PartitionType.P16x16: ((0, 0, 16, 16),),
    PartitionType.P16x8: ((0, 0, 8, 16), (8, 0, 8, 16)),
    PartitionType.P8x16: ((0, 0, 16, 8), (0, 8, 16, 8)),
}

#: Sub-partition rectangles within one 8x8 quadrant (relative to quadrant).
SUBPARTITION_RECTS: Dict[SubPartitionType,
                         Tuple[Tuple[int, int, int, int], ...]] = {
    SubPartitionType.S8x8: ((0, 0, 8, 8),),
    SubPartitionType.S8x4: ((0, 0, 4, 8), (4, 0, 4, 8)),
    SubPartitionType.S4x8: ((0, 0, 8, 4), (0, 4, 8, 4)),
    SubPartitionType.S4x4: ((0, 0, 4, 4), (0, 4, 4, 4),
                            (4, 0, 4, 4), (4, 4, 4, 4)),
}

#: Quadrant origins within a macroblock, in raster order.
QUADRANT_ORIGINS: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 8), (8, 0), (8, 8))


@dataclass(frozen=True)
class MotionVector:
    """Integer-pel displacement in pixels (dy, dx)."""

    dy: int = 0
    dx: int = 0

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.dy + other.dy, self.dx + other.dx)

    def __sub__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.dy - other.dy, self.dx - other.dx)

    @property
    def magnitude(self) -> int:
        return abs(self.dy) + abs(self.dx)


@dataclass
class InterPartition:
    """One motion-compensated rectangle of a macroblock.

    ``rect`` is (offset_y, offset_x, height, width) relative to the MB's
    top-left corner; ``mv`` displaces it within the forward (or, for a
    backward-only partition, the backward) reference. Bidirectional
    partitions carry a second vector, ``mv_backward``, into the backward
    reference; their prediction is the rounded average of the two
    compensated blocks.
    """

    rect: Tuple[int, int, int, int]
    mv: MotionVector
    direction: PredictionDirection = PredictionDirection.FORWARD
    mv_backward: Optional[MotionVector] = None


@dataclass
class MacroblockDecision:
    """Everything the encoder decided for one macroblock.

    This is the unit that the syntax layer serializes, the reconstruction
    step consumes, and the decoder reproduces from the bitstream.
    """

    mode: MacroblockMode
    qp: int
    intra_mode: Optional[IntraMode] = None
    partition_type: Optional[PartitionType] = None
    sub_types: Optional[List[SubPartitionType]] = None  # 4, when P8x8
    partitions: List[InterPartition] = field(default_factory=list)
    #: Quantized 4x4 coefficient blocks in MB raster order (16 blocks),
    #: or None when nothing is coded (skip).
    coefficients: Optional[object] = None  # np.ndarray (16, 4, 4) int32
    #: Per-quadrant coded flags (coded block pattern).
    cbp: Tuple[bool, bool, bool, bool] = (False, False, False, False)


@dataclass
class DependencyRecord:
    """One pixel-domain dependency: this MB reads pixels of another MB.

    ``source`` identifies the supplying macroblock as (coded frame index,
    mb index) — for intra prediction the source frame equals the
    dependent MB's own frame. ``pixels`` counts how many of the dependent
    MB's predicted pixels come from the source MB; VideoApp normalizes
    these into edge weights. Fractional values arise from bidirectional
    prediction, where each reference supplies half of every pixel.
    """

    source: Tuple[int, int]
    pixels: float


@dataclass
class MacroblockTrace:
    """Analysis-facing record of one encoded macroblock."""

    frame_coded_index: int
    mb_index: int
    bit_start: int  #: first payload bit attributed to this MB
    bit_end: int    #: one past the last payload bit attributed to this MB
    dependencies: List[DependencyRecord] = field(default_factory=list)

    @property
    def bit_length(self) -> int:
        return self.bit_end - self.bit_start


@dataclass
class FrameTrace:
    """Analysis-facing record of one encoded frame."""

    coded_index: int
    display_index: int
    frame_type: FrameType
    payload_bits: int
    slice_starts: List[int]  #: first MB index of each slice
    macroblocks: List[MacroblockTrace] = field(default_factory=list)


@dataclass
class EncodingTrace:
    """Complete dependency/bit-layout record for one encoded video."""

    mb_rows: int
    mb_cols: int
    frames: List[FrameTrace] = field(default_factory=list)

    @property
    def macroblocks_per_frame(self) -> int:
        return self.mb_rows * self.mb_cols

    def total_payload_bits(self) -> int:
        return sum(f.payload_bits for f in self.frames)
