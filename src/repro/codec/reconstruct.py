"""Shared macroblock prediction and reconstruction.

The encoder's closed reconstruction loop and the decoder both run this
exact code, which is what makes encode/decode lossless with respect to
the encoder's own reconstruction on clean streams — and what propagates
pixel damage through reference frames on corrupted ones (the paper's
"compensation errors").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import EncoderError
from .intra import predict_intra
from .motion import compensate
from .types import (
    MB_SIZE,
    MacroblockDecision,
    MacroblockMode,
    PredictionDirection,
)

#: Reference set for one frame: direction -> padded reference pixels.
ReferenceSet = Dict[PredictionDirection, np.ndarray]


def build_prediction(decision: MacroblockDecision,
                     reconstructed_frame: np.ndarray,
                     references: ReferenceSet, pad: int,
                     mb_row: int, mb_col: int,
                     min_mb_row: int) -> np.ndarray:
    """Compute the 16x16 prediction for one macroblock."""
    top = mb_row * MB_SIZE
    left = mb_col * MB_SIZE
    if decision.mode == MacroblockMode.INTRA:
        if decision.intra_mode is None:
            raise EncoderError("intra macroblock without an intra mode")
        return predict_intra(reconstructed_frame, mb_row, mb_col,
                             decision.intra_mode, min_mb_row)
    prediction = np.empty((MB_SIZE, MB_SIZE), dtype=np.uint8)
    forward = references.get(PredictionDirection.FORWARD)
    backward = references.get(PredictionDirection.BACKWARD)
    for partition in decision.partitions:
        oy, ox, height, width = partition.rect
        if partition.direction == PredictionDirection.BIDIRECTIONAL \
                and backward is not None and forward is not None \
                and partition.mv_backward is not None:
            block_fwd = compensate(forward, pad, top, left,
                                   partition.rect, partition.mv)
            block_bwd = compensate(backward, pad, top, left,
                                   partition.rect, partition.mv_backward)
            block = ((block_fwd.astype(np.uint16)
                      + block_bwd.astype(np.uint16) + 1) >> 1
                     ).astype(np.uint8)
        else:
            reference = references.get(partition.direction)
            if reference is None:
                # A corrupted stream can request a reference the frame
                # does not have; fall back to the forward one.
                reference = forward if forward is not None else backward
            if reference is None:
                raise EncoderError("no reference frame available")
            block = compensate(reference, pad, top, left, partition.rect,
                               partition.mv)
        prediction[oy:oy + height, ox:ox + width] = block
    return prediction


def reconstruct_macroblock(decision: MacroblockDecision,
                           prediction: np.ndarray,
                           residual: Optional[np.ndarray]) -> np.ndarray:
    """Prediction + dequantized residual, clipped to pixel range."""
    if residual is None or not any(decision.cbp):
        return prediction.copy()
    combined = prediction.astype(np.int32) + residual
    return np.clip(combined, 0, 255).astype(np.uint8)
