"""Constant-rate-factor style quality control.

The paper controls quality via x264's CRF (Section 6.3): a single knob
that maps to per-frame QPs, with reference frames (I) encoded slightly
finer and discardable frames (B) slightly coarser, plus a mild
activity-adaptive per-MB QP offset — high-variance (busy) macroblocks
are quantized more aggressively because the eye tolerates it, which is
exactly the behaviour the paper cites as the reason video quality is
controlled by CRF rather than target PSNR.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncoderError
from .transform import MAX_QP, MIN_QP
from .types import FrameType

#: QP offsets per frame type relative to the CRF value.
_TYPE_OFFSETS = {
    FrameType.I: -2,
    FrameType.P: 0,
    FrameType.B: +2,
}


def frame_qp(crf: int, frame_type: FrameType) -> int:
    """Base QP for a frame of the given type at the given CRF."""
    if not MIN_QP <= crf <= MAX_QP:
        raise EncoderError(f"crf must be in {MIN_QP}..{MAX_QP}, got {crf}")
    return min(max(crf + _TYPE_OFFSETS[frame_type], MIN_QP), MAX_QP)


def activity_qp_offset(mb_pixels: np.ndarray) -> int:
    """Adaptive QP offset from local activity (pixel variance).

    Flat blocks get a finer quantizer (artifacts there are visible);
    busy blocks get a coarser one. Offsets are small (|offset| <= 2) so
    delta-QP coding is exercised without destabilizing quality.
    """
    variance = float(np.var(mb_pixels.astype(np.float64)))
    if variance < 25.0:
        return -2
    if variance < 100.0:
        return -1
    if variance > 1500.0:
        return 2
    if variance > 400.0:
        return 1
    return 0


def macroblock_qp(base_qp: int, mb_pixels: np.ndarray,
                  adaptive: bool) -> int:
    """Final QP for one macroblock."""
    offset = activity_qp_offset(mb_pixels) if adaptive else 0
    return min(max(base_qp + offset, MIN_QP), MAX_QP)


def frame_activity_offsets(frame: np.ndarray) -> np.ndarray:
    """Per-macroblock :func:`activity_qp_offset` for a whole frame.

    One batched variance pass replacing a per-MB ``np.var`` call. Pixel
    values are small integers, so every mean/variance intermediate is an
    exactly representable float64 and the result matches the scalar
    function bit for bit. Returns an (mb_rows, mb_cols) int array.
    """
    mb_rows = frame.shape[0] // 16
    mb_cols = frame.shape[1] // 16
    pixels = (
        frame.astype(np.float64)
        .reshape(mb_rows, 16, mb_cols, 16)
        .transpose(0, 2, 1, 3)
        .reshape(mb_rows, mb_cols, 256)
    )
    means = pixels.mean(axis=2)
    variances = ((pixels - means[..., None]) ** 2).mean(axis=2)
    offsets = np.zeros((mb_rows, mb_cols), dtype=np.int64)
    offsets[variances < 100.0] = -1
    offsets[variances < 25.0] = -2
    offsets[variances > 400.0] = 1
    offsets[variances > 1500.0] = 2
    return offsets
