"""Context model layout for the syntax elements.

One :class:`ContextModel` instance describes the whole context table: a
named :class:`~repro.codec.entropy.ContextGroup` per syntax element. The
CABAC backend sizes its probability table from ``total_contexts``; the
CAVLC backend ignores contexts but shares the same group descriptors so
the syntax layer is backend-agnostic.

Context state lives inside the entropy backend and is reset at every
slice, matching H.264 (the paper relies on this reset: it is what stops
coding-error propagation at frame boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import BitstreamError
from .entropy import ContextGroup


@dataclass
class ContextModel:
    """Allocates contiguous context index ranges to named groups."""

    groups: Dict[str, ContextGroup] = field(default_factory=dict)
    total_contexts: int = 0

    def add(self, name: str, variants: int = 1, tail: int = 0,
            tu_cap: int = 1, max_value: int = 1) -> ContextGroup:
        if name in self.groups:
            raise BitstreamError(f"context group {name!r} already defined")
        group = ContextGroup(
            base=self.total_contexts, variants=variants, tail=tail,
            tu_cap=tu_cap, max_value=max_value,
        )
        self.groups[name] = group
        self.total_contexts += group.size
        return group

    def __getitem__(self, name: str) -> ContextGroup:
        return self.groups[name]

    def __getstate__(self) -> dict:
        """Pickle the layout, never the block-plan memo cache.

        The syntax layer memoizes whole-block op plans on the model
        (``_block_plan_caches``), and the default model is shared by
        every encoder and decoder in the process. The cache is a pure
        speedup — plans are recomputed on miss — but it grows with the
        coefficient patterns seen so far, so letting it ride in pickles
        would make encoder/decoder (and store) pickles depend on
        encoding history. Campaign journals hash those pickles into the
        context digest; a history-dependent pickle would orphan any
        journal on resume.
        """
        state = self.__dict__.copy()
        state.pop("_block_plan_caches", None)
        return state


def build_context_model() -> ContextModel:
    """The context model used by the codec's macroblock syntax.

    Neighbor-conditioned first-bin variants (``variants > 1``) are the
    cross-macroblock context dependencies of Figure 2(a) in the paper:
    corrupting one MB's decoded state changes the contexts — and hence
    the interpretation — of the same fields in following MBs.
    """
    model = ContextModel()
    # Macroblock layer.
    model.add("skip_flag", variants=3)            # by #skipped neighbors
    model.add("is_intra", variants=3)             # by #intra neighbors
    model.add("intra_mode", tail=3, tu_cap=3, max_value=3)
    model.add("partition_type", variants=3, tail=2, tu_cap=3, max_value=3)
    model.add("sub_type", tail=2, tu_cap=3, max_value=3)
    # B-frame reference pick: forward / backward / bidirectional.
    model.add("direction", variants=2, tail=1, tu_cap=2, max_value=2)
    model.add("mvd_x", variants=3, tail=6, tu_cap=7, max_value=256)
    model.add("mvd_y", variants=3, tail=6, tu_cap=7, max_value=256)
    model.add("dqp", variants=2, tail=4, tu_cap=5, max_value=51)
    model.add("cbp", variants=4)                  # per-quadrant coded flag
    model.add("nnz", variants=3, tail=6, tu_cap=7, max_value=16)
    model.add("sig", variants=16)                 # per zigzag position
    model.add("level", variants=3, tail=7, tu_cap=8, max_value=(1 << 15))
    return model


#: Shared immutable layout; state is per-backend, so reuse is safe.
DEFAULT_CONTEXT_MODEL = build_context_model()
