"""Macroblock syntax: the bitstream grammar.

``encode_macroblock`` and ``decode_macroblock`` are exact mirrors; they
walk the same element order, select the same contexts from the same
neighbor state, and use the same binarizations. All error-propagation
behaviour the paper studies emerges here: a flipped payload bit makes
the entropy decoder emit different bins, which changes decoded values,
which corrupts the neighbor state, which changes context selection and
metadata prediction for the rest of the slice.

Element order per macroblock:

1. ``skip_flag``                      (P/B frames only)
2. ``is_intra``                       (P/B, non-skip)
3. intra mode | partition tree + motion vector differences
4. delta-QP
5. coded block pattern (4 quadrant flags)
6. residual: per coded 4x4 block, nnz + significance map + levels
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import BitstreamError, EncoderError
from .contexts import ContextModel
from .entropy import EntropyDecoder, EntropyEncoder, uint_bin_ops
from .neighbors import FrameMbState
from .transform import (
    MAX_QP,
    MIN_QP,
    ZIGZAG_FLAT_INDEX,
    ZIGZAG_FLAT_INVERSE,
)
from .types import (
    PARTITION_RECTS,
    QUADRANT_ORIGINS,
    SUBPARTITION_RECTS,
    FrameType,
    InterPartition,
    IntraMode,
    MacroblockDecision,
    MacroblockMode,
    MotionVector,
    PartitionType,
    PredictionDirection,
    SubPartitionType,
)


def partition_rectangles(
    partition_type: PartitionType,
    sub_types: Optional[List[SubPartitionType]],
) -> List[Tuple[int, int, int, int]]:
    """Canonical (offset_y, offset_x, h, w) list for a partition layout."""
    if partition_type != PartitionType.P8x8:
        return list(PARTITION_RECTS[partition_type])
    if sub_types is None or len(sub_types) != 4:
        raise EncoderError("P8x8 requires exactly 4 sub-partition types")
    rects = []
    for (qy, qx), sub in zip(QUADRANT_ORIGINS, sub_types):
        for oy, ox, height, width in SUBPARTITION_RECTS[sub]:
            rects.append((qy + oy, qx + ox, height, width))
    return rects


#: Map a quadrant index and in-quadrant block index to the MB-raster
#: index of its 4x4 coefficient block.
def _block_index(quadrant: int, block: int) -> int:
    qy, qx = QUADRANT_ORIGINS[quadrant]
    row = qy // 4 + block // 2
    col = qx // 4 + block % 2
    return row * 4 + col


def _level_bucket(position: int) -> int:
    if position == 0:
        return 0
    if position < 6:
        return 1
    return 2


#: ``_level_bucket`` for every scan position, as a table for the hot loop.
_LEVEL_BUCKETS = tuple(_level_bucket(position) for position in range(16))


# ----------------------------------------------------------------------
# Residual blocks
# ----------------------------------------------------------------------

#: Per-variant cap on cached whole-block plans; quantized residual
#: blocks repeat heavily, so the cache saturates far below this.
_PLAN_CACHE_LIMIT = 1 << 16


def _block_ops(plan_cache, nnz_ops, sig_base, level_tables, level_group,
               vector: List[int]) -> List[int]:
    # ``vector`` is the block's zigzag scan as plain Python ints (the
    # caller gathers all 16 blocks of the MB in one indexing op) and the
    # op tables are hoisted out of the residual loop by the caller. The
    # whole block is planned as one bin string and the caller emits all
    # of a macroblock's blocks in a single ``encode_bins`` call —
    # identical bins, contexts, and order to symbol-by-symbol encoding,
    # without per-symbol dispatch. Bin strings depend only on the
    # values (never on coder state), so whole-block plans are memoized
    # by scan content: quantization collapses most blocks onto a small
    # set of sparse vectors.
    key = tuple(vector)
    ops = plan_cache.get(key)
    if ops is not None:
        return ops
    nonzero = 16 - vector.count(0)
    ops = list(nnz_ops[nonzero])
    append = ops.append
    extend = ops.extend
    found = 0
    for position in range(16):
        remaining = nonzero - found
        if remaining == 0:
            break
        value = vector[position]
        if 16 - position == remaining:
            significant = True  # implied: all remaining positions are set
        else:
            significant = value != 0
            append(((sig_base + position) << 1) | (1 if significant else 0))
        if significant:
            magnitude = abs(value) - 1
            table = level_tables[_LEVEL_BUCKETS[position]]
            if magnitude < len(table):
                extend(table[magnitude])
            else:
                # Rare large level: plan on the fly (validates range).
                if magnitude > level_group.max_value:
                    raise BitstreamError(
                        f"value {magnitude} exceeds group max "
                        f"{level_group.max_value}")
                extend(uint_bin_ops(
                    magnitude,
                    level_group.unary_ladder(_LEVEL_BUCKETS[position]),
                    level_group.tu_cap))
            append(-2 if value < 0 else -1)
            found += 1
    if len(plan_cache) < _PLAN_CACHE_LIMIT:
        plan_cache[key] = ops
    return ops


def _decode_block(dec: EntropyDecoder, nnz_group, sig_group, level_group,
                  nnz_variant: int) -> List[int]:
    vector = [0] * 16
    decode_uint = dec.decode_uint
    decode_flag = dec.decode_flag
    decode_bypass = dec.decode_bypass
    nonzero = decode_uint(nnz_group, variant=nnz_variant)
    found = 0
    for position in range(16):
        remaining = nonzero - found
        if remaining == 0:
            break
        if 16 - position == remaining:
            significant = True
        else:
            significant = decode_flag(sig_group, variant=position)
        if significant:
            magnitude = decode_uint(level_group,
                                    variant=_LEVEL_BUCKETS[position]) + 1
            if decode_bypass():
                magnitude = -magnitude
            vector[position] = magnitude
            found += 1
    return vector


# ----------------------------------------------------------------------
# Macroblocks
# ----------------------------------------------------------------------

def encode_macroblock(enc: EntropyEncoder, model: ContextModel,
                      state: FrameMbState, decision: MacroblockDecision,
                      frame_type: FrameType, mb_row: int, mb_col: int,
                      min_mb_row: int) -> None:
    """Serialize one macroblock decision."""
    inter_frame = frame_type != FrameType.I
    if inter_frame:
        skip_variant = state.skip_context(mb_row, mb_col, min_mb_row)
        enc.encode_flag(decision.mode == MacroblockMode.SKIP,
                        model["skip_flag"], variant=skip_variant)
        if decision.mode == MacroblockMode.SKIP:
            return
        intra_variant = state.intra_context(mb_row, mb_col, min_mb_row)
        enc.encode_flag(decision.mode == MacroblockMode.INTRA,
                        model["is_intra"], variant=intra_variant)
    elif decision.mode != MacroblockMode.INTRA:
        raise EncoderError("I-frame macroblocks must be intra")

    if decision.mode == MacroblockMode.INTRA:
        enc.encode_uint(int(decision.intra_mode), model["intra_mode"])
    else:
        assert decision.partition_type is not None
        part_variant = state.partition_context(mb_row, mb_col, min_mb_row)
        enc.encode_uint(int(decision.partition_type),
                        model["partition_type"], variant=part_variant)
        if decision.partition_type == PartitionType.P8x8:
            assert decision.sub_types is not None
            for sub in decision.sub_types:
                enc.encode_uint(int(sub), model["sub_type"])
        pred_mv = state.predict_mv(mb_row, mb_col, min_mb_row)
        mvd_variant = state.mvd_context(mb_row, mb_col, min_mb_row)
        previous_direction = PredictionDirection.FORWARD
        for partition in decision.partitions:
            if frame_type == FrameType.B:
                variant = 0 if previous_direction == \
                    PredictionDirection.FORWARD else 1
                enc.encode_uint(int(partition.direction),
                                model["direction"], variant=variant)
                previous_direction = partition.direction
            mvd = partition.mv - pred_mv
            enc.encode_sint(mvd.dx, model["mvd_x"], variant=mvd_variant)
            enc.encode_sint(mvd.dy, model["mvd_y"], variant=mvd_variant)
            if partition.direction == PredictionDirection.BIDIRECTIONAL:
                assert partition.mv_backward is not None
                mvd_backward = partition.mv_backward - pred_mv
                enc.encode_sint(mvd_backward.dx, model["mvd_x"],
                                variant=mvd_variant)
                enc.encode_sint(mvd_backward.dy, model["mvd_y"],
                                variant=mvd_variant)

    dqp = decision.qp - state.prev_qp
    enc.encode_sint(dqp, model["dqp"], variant=state.dqp_context())

    for quadrant in range(4):
        enc.encode_flag(bool(decision.cbp[quadrant]), model["cbp"],
                        variant=quadrant)
    nnz_variant = state.nnz_context(mb_row, mb_col, min_mb_row)
    if decision.coefficients is not None:
        # Zigzag-scan all 16 blocks to plain Python ints in one gather.
        vectors = np.asarray(decision.coefficients).reshape(16, 16)[
            :, ZIGZAG_FLAT_INDEX].tolist()
        level_group = model["level"]
        nnz_group = model["nnz"]
        nnz_ops = nnz_group.uint_op_table(nnz_variant)
        sig_base = model["sig"].first_bin_context(0)
        level_tables = (level_group.uint_op_table(0),
                        level_group.uint_op_table(1),
                        level_group.uint_op_table(2))
        # Whole-block plan caches live on the model (one per nnz
        # variant — the plan's nnz prefix depends on it; everything
        # else in the plan is variant-independent).
        caches = getattr(model, "_block_plan_caches", None)
        if caches is None:
            caches = tuple({} for _ in range(nnz_group.variants))
            model._block_plan_caches = caches
        plan_cache = caches[nnz_variant]
        # All coded blocks of the MB go out in one encode_bins call:
        # the op streams concatenate exactly as the per-block calls
        # would have emitted them.
        combined: List[int] = []
        extend = combined.extend
        for quadrant in range(4):
            if not decision.cbp[quadrant]:
                continue
            for block in range(4):
                index = _block_index(quadrant, block)
                extend(_block_ops(plan_cache, nnz_ops, sig_base,
                                  level_tables, level_group,
                                  vectors[index]))
        if combined:
            enc.encode_bins(combined)


def decode_macroblock(dec: EntropyDecoder, model: ContextModel,
                      state: FrameMbState, frame_type: FrameType,
                      mb_row: int, mb_col: int,
                      min_mb_row: int) -> MacroblockDecision:
    """Parse one macroblock; mirrors :func:`encode_macroblock` exactly.

    Never fails on corrupted input: every decoded value is clamped to
    its legal range and every loop is bounded.
    """
    inter_frame = frame_type != FrameType.I
    if inter_frame:
        skip_variant = state.skip_context(mb_row, mb_col, min_mb_row)
        if dec.decode_flag(model["skip_flag"], variant=skip_variant):
            pred_mv = state.predict_mv(mb_row, mb_col, min_mb_row)
            return MacroblockDecision(
                mode=MacroblockMode.SKIP,
                qp=state.prev_qp,
                partition_type=PartitionType.P16x16,
                partitions=[InterPartition(rect=(0, 0, 16, 16), mv=pred_mv)],
            )
        intra_variant = state.intra_context(mb_row, mb_col, min_mb_row)
        is_intra = dec.decode_flag(model["is_intra"], variant=intra_variant)
    else:
        is_intra = True

    intra_mode: Optional[IntraMode] = None
    partition_type: Optional[PartitionType] = None
    sub_types: Optional[List[SubPartitionType]] = None
    partitions: List[InterPartition] = []
    if is_intra:
        intra_mode = IntraMode(dec.decode_uint(model["intra_mode"]))
    else:
        part_variant = state.partition_context(mb_row, mb_col, min_mb_row)
        partition_type = PartitionType(
            dec.decode_uint(model["partition_type"], variant=part_variant))
        if partition_type == PartitionType.P8x8:
            sub_types = [
                SubPartitionType(dec.decode_uint(model["sub_type"]))
                for _ in range(4)
            ]
        pred_mv = state.predict_mv(mb_row, mb_col, min_mb_row)
        mvd_variant = state.mvd_context(mb_row, mb_col, min_mb_row)
        previous_direction = PredictionDirection.FORWARD
        for rect in partition_rectangles(partition_type, sub_types):
            direction = PredictionDirection.FORWARD
            if frame_type == FrameType.B:
                variant = 0 if previous_direction == \
                    PredictionDirection.FORWARD else 1
                direction = PredictionDirection(
                    dec.decode_uint(model["direction"], variant=variant))
                previous_direction = direction
            mvd_x = dec.decode_sint(model["mvd_x"], variant=mvd_variant)
            mvd_y = dec.decode_sint(model["mvd_y"], variant=mvd_variant)
            mv_backward = None
            if direction == PredictionDirection.BIDIRECTIONAL:
                back_x = dec.decode_sint(model["mvd_x"],
                                         variant=mvd_variant)
                back_y = dec.decode_sint(model["mvd_y"],
                                         variant=mvd_variant)
                mv_backward = pred_mv + MotionVector(back_y, back_x)
            partitions.append(InterPartition(
                rect=rect,
                mv=pred_mv + MotionVector(mvd_y, mvd_x),
                direction=direction,
                mv_backward=mv_backward,
            ))

    dqp = dec.decode_sint(model["dqp"], variant=state.dqp_context())
    qp = min(max(state.prev_qp + dqp, MIN_QP), MAX_QP)

    cbp = tuple(
        dec.decode_flag(model["cbp"], variant=quadrant)
        for quadrant in range(4)
    )
    vectors = [[0] * 16 for _ in range(16)]
    nnz_variant = state.nnz_context(mb_row, mb_col, min_mb_row)
    nnz_group = model["nnz"]
    sig_group = model["sig"]
    level_group = model["level"]
    for quadrant in range(4):
        if not cbp[quadrant]:
            continue
        for block in range(4):
            index = _block_index(quadrant, block)
            vectors[index] = _decode_block(dec, nnz_group, sig_group,
                                           level_group, nnz_variant)
    # One batched inverse zigzag for the whole macroblock.
    coefficients = np.array(vectors, dtype=np.int32)[
        :, ZIGZAG_FLAT_INVERSE].reshape(16, 4, 4)

    mode = MacroblockMode.INTRA if is_intra else MacroblockMode.INTER
    return MacroblockDecision(
        mode=mode,
        qp=qp,
        intra_mode=intra_mode,
        partition_type=partition_type,
        sub_types=sub_types,
        partitions=partitions,
        coefficients=coefficients,
        cbp=cbp,  # type: ignore[arg-type]
    )


def finalize_macroblock(state: FrameMbState, decision: MacroblockDecision,
                        mb_row: int, mb_col: int) -> None:
    """Update neighbor state after one MB; shared by encoder and decoder."""
    if decision.mode == MacroblockMode.INTRA:
        representative_mv = MotionVector(0, 0)
    else:
        representative_mv = decision.partitions[0].mv
    if decision.coefficients is None:
        total_nonzero = 0
    else:
        total_nonzero = int(np.count_nonzero(decision.coefficients))
    dqp = 0 if decision.mode == MacroblockMode.SKIP else (
        decision.qp - state.prev_qp)
    state.record(mb_row, mb_col, decision.mode, representative_mv,
                 decision.qp, dqp, total_nonzero)
