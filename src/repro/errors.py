"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VideoFormatError(ReproError):
    """A raw video or frame has an unusable shape, dtype, or size."""


class EncoderError(ReproError):
    """The encoder was misconfigured or hit an internal inconsistency."""


class GopStructureError(EncoderError):
    """A GOP structure cannot be split into independent work units.

    Raised by :func:`repro.codec.batch.gop_unit_bounds` when the
    configured GOP shape creates cross-boundary references (today:
    ``bframes > 0``, whose trailing B-frames reference the next GOP's
    anchor). Callers that can fall back — like the encode farm, which
    degrades to one whole-clip unit per clip — catch exactly this type
    instead of pattern-matching a generic :class:`EncoderError`.
    """


class BitstreamError(ReproError):
    """A coded bitstream is structurally unusable.

    The decoder never raises this for *corrupted payload bits* (bit flips
    are expected under approximate storage and are decoded best-effort);
    it is raised only when the precise portions of the stream (magic,
    frame headers) are missing or inconsistent.
    """


class StorageError(ReproError):
    """A storage device or ECC codec was used incorrectly."""


class CryptoError(ReproError):
    """An encryption primitive or mode was used incorrectly."""


class AnalysisError(ReproError):
    """A VideoApp analysis step received inconsistent inputs."""


class ChaosError(ReproError):
    """A fault deliberately injected by an armed chaos policy.

    Raised only from the seams instrumented by
    :mod:`repro.runtime.chaos` while a :class:`~repro.runtime.chaos.
    ChaosPolicy` is armed. Production code never raises it on its own;
    seeing one outside a chaos run means a policy leaked past
    ``disarm()``.
    """


class TrialTimeout(ReproError):
    """A Monte Carlo trial exceeded its wall-clock watchdog budget.

    Raised *inside* the process executing the trial (via a
    ``SIGALRM``-driven deadline, see :mod:`repro.runtime.watchdog`) so a
    corrupted bitstream that drives the arithmetic decoder into a
    pathological path cannot stall an entire campaign. The executor
    converts it into a structured ``TrialFailure`` rather than letting
    it abort the campaign.
    """
