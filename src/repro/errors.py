"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VideoFormatError(ReproError):
    """A raw video or frame has an unusable shape, dtype, or size."""


class EncoderError(ReproError):
    """The encoder was misconfigured or hit an internal inconsistency."""


class GopStructureError(EncoderError):
    """A GOP structure cannot be split into independent work units.

    Raised by :func:`repro.codec.batch.gop_unit_bounds` when the
    configured GOP shape creates cross-boundary references (today:
    ``bframes > 0``, whose trailing B-frames reference the next GOP's
    anchor). Callers that can fall back — like the encode farm, which
    degrades to one whole-clip unit per clip — catch exactly this type
    instead of pattern-matching a generic :class:`EncoderError`.
    """


class BitstreamError(ReproError):
    """A coded bitstream is structurally unusable.

    The decoder never raises this for *corrupted payload bits* (bit flips
    are expected under approximate storage and are decoded best-effort);
    it is raised only when the precise portions of the stream (magic,
    frame headers) are missing or inconsistent.
    """


class StorageError(ReproError):
    """A storage device or ECC codec was used incorrectly."""


class CryptoError(ReproError):
    """An encryption primitive or mode was used incorrectly."""


class AnalysisError(ReproError):
    """A VideoApp analysis step received inconsistent inputs."""


class ChaosError(ReproError):
    """A fault deliberately injected by an armed chaos policy.

    Raised only from the seams instrumented by
    :mod:`repro.runtime.chaos` while a :class:`~repro.runtime.chaos.
    ChaosPolicy` is armed. Production code never raises it on its own;
    seeing one outside a chaos run means a policy leaked past
    ``disarm()``.
    """


class ServiceError(ReproError):
    """Base class for approximate-video-store service failures.

    Raised by :mod:`repro.service` for operational failures a client of
    the serving layer must handle: denied access, retired keys, a full
    ingest queue, or a read the service refuses to serve rather than
    return silently wrong data.
    """


class AccessDeniedError(ServiceError):
    """A tenant asked for an object its access policy does not grant."""


class StaleKeyError(ServiceError):
    """An operation needed a tenant key that has been retired.

    Ciphertext encrypted under a retired key stays on the shards, but
    the keyring refuses to hand the key out again — the service fails
    the operation instead of decrypting with a key the operator
    revoked.
    """


class ServiceOverloadError(ServiceError):
    """The ingest queue is full; the service sheds the request.

    The front-end fails fast rather than buffering without bound —
    callers are expected to retry with backoff or drop the clip.
    """


class TransientShardError(ServiceError):
    """A shard read failed transiently (flake, brown-out, timeout).

    Unlike device-level bit damage — which is *data* the ladder and
    concealment machinery grade — this is an *operational* fault: the
    read never produced bytes at all. Callers retry with backoff
    (:meth:`repro.service.frontend.ServiceFrontend.read_with_retry`)
    or escalate to another replica; today it is raised only from the
    chaos seam in :mod:`repro.service.shards`.
    """


class ReadRefusedError(ServiceError):
    """The service refused a read rather than return suspect data.

    Raised (or surfaced as a ``refused`` outcome) when read-back bytes
    fail their integrity check while the device reported a clean read —
    the signature of a silently miscorrected ECC block — or when a
    precise stream comes back with known-uncorrectable damage.
    """


class TrialTimeout(ReproError):
    """A Monte Carlo trial exceeded its wall-clock watchdog budget.

    Raised *inside* the process executing the trial (via a
    ``SIGALRM``-driven deadline, see :mod:`repro.runtime.watchdog`) so a
    corrupted bitstream that drives the arithmetic decoder into a
    pathological path cannot stall an entire campaign. The executor
    converts it into a structured ``TrialFailure`` rather than letting
    it abort the campaign.
    """
