"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VideoFormatError(ReproError):
    """A raw video or frame has an unusable shape, dtype, or size."""


class EncoderError(ReproError):
    """The encoder was misconfigured or hit an internal inconsistency."""


class BitstreamError(ReproError):
    """A coded bitstream is structurally unusable.

    The decoder never raises this for *corrupted payload bits* (bit flips
    are expected under approximate storage and are decoded best-effort);
    it is raised only when the precise portions of the stream (magic,
    frame headers) are missing or inconsistent.
    """


class StorageError(ReproError):
    """A storage device or ECC codec was used incorrectly."""


class CryptoError(ReproError):
    """An encryption primitive or mode was used incorrectly."""


class AnalysisError(ReproError):
    """A VideoApp analysis step received inconsistent inputs."""


class TrialTimeout(ReproError):
    """A Monte Carlo trial exceeded its wall-clock watchdog budget.

    Raised *inside* the process executing the trial (via a
    ``SIGALRM``-driven deadline, see :mod:`repro.runtime.watchdog`) so a
    corrupted bitstream that drives the arithmetic decoder into a
    pathological path cannot stall an entire campaign. The executor
    converts it into a structured ``TrialFailure`` rather than letting
    it abort the campaign.
    """
