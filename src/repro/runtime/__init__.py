"""Trial-execution runtime: parallel Monte Carlo campaigns.

Turns the paper's fault-injection measurements into lists of
self-contained :class:`TrialSpec` objects executed — serially or over a
process pool — by :class:`TrialExecutor`, plus a session-scoped
:class:`ArtifactCache` for the clean encode/decode every campaign needs.
"""

from .artifacts import ArtifactCache, CACHE_ENV, content_key, session_cache
from .executor import (
    TrialExecutor,
    WORKERS_ENV,
    default_chunksize,
    fork_available,
    resolve_workers,
    run_campaign,
)
from .trials import (
    KIND_SINGLE_FLIP,
    KIND_STORED_READ,
    KIND_SWEEP,
    RunStats,
    TrialContext,
    TrialResult,
    TrialSpec,
    WorkerState,
    build_sweep_specs,
    execute_trial,
    spawn_trial_seeds,
)

__all__ = [
    "ArtifactCache",
    "CACHE_ENV",
    "KIND_SINGLE_FLIP",
    "KIND_STORED_READ",
    "KIND_SWEEP",
    "RunStats",
    "TrialContext",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "WORKERS_ENV",
    "WorkerState",
    "build_sweep_specs",
    "content_key",
    "default_chunksize",
    "execute_trial",
    "fork_available",
    "resolve_workers",
    "run_campaign",
    "session_cache",
    "spawn_trial_seeds",
]
