"""Trial-execution runtime: parallel, fault-tolerant Monte Carlo campaigns.

Turns the paper's fault-injection measurements into lists of
self-contained :class:`TrialSpec` objects executed — serially or over a
process pool — by :class:`TrialExecutor`, plus a session-scoped
:class:`ArtifactCache` for the clean encode/decode every campaign needs.

The execution layer survives its own failure modes: per-trial watchdog
deadlines (:mod:`~repro.runtime.watchdog`), worker-crash recovery with
bounded retries and poison-trial quarantine (:mod:`~repro.runtime.executor`),
and append-only campaign checkpoint/resume (:mod:`~repro.runtime.journal`).
"""

from .artifacts import ArtifactCache, CACHE_ENV, content_key, session_cache
from .chaos import (
    ChaosPolicy,
    arm as arm_chaos,
    chaos_events,
    disarm as disarm_chaos,
    policy_from_env as chaos_policy_from_env,
    schedule_digest as chaos_schedule_digest,
)
from .executor import (
    DEFAULT_MAX_RETRIES,
    MAX_RETRIES_ENV,
    TrialExecutor,
    WORKERS_ENV,
    default_chunksize,
    fork_available,
    resolve_max_retries,
    resolve_workers,
    run_campaign,
)
from .farm import (
    ClipEncodeResult,
    FarmResult,
    build_encode_unit_specs,
    build_farm_context,
    clip_unit_bounds,
    encode_farm,
)
from .journal import JOURNAL_VERSION, TrialJournal, campaign_digest, \
    context_digest, spec_digest
from .shm import SHM_ENV, SharedClipStore, pack_clips, shared_memory_enabled
from .trials import (
    BATCH_SIZE_ENV,
    DEFAULT_BATCH_SIZE,
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    KIND_ENCODE_UNIT,
    KIND_RETENTION_READ,
    KIND_SINGLE_FLIP,
    KIND_STORED_READ,
    KIND_SWEEP,
    RunStats,
    TrialContext,
    TrialFailure,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    WorkerState,
    build_sweep_specs,
    execute_trial,
    execute_trial_batch,
    register_trial_kind,
    resolve_batch_size,
    spawn_trial_seeds,
    unregister_trial_kind,
)
from .watchdog import (
    TIMEOUT_ENV,
    alarm_capable,
    resolve_trial_timeout,
    run_with_deadline,
    trial_deadline,
)

__all__ = [
    "ArtifactCache",
    "BATCH_SIZE_ENV",
    "CACHE_ENV",
    "ChaosPolicy",
    "arm_chaos",
    "chaos_events",
    "chaos_policy_from_env",
    "chaos_schedule_digest",
    "clip_unit_bounds",
    "disarm_chaos",
    "ClipEncodeResult",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_RETRIES",
    "FAILURE_CRASH",
    "FAILURE_ERROR",
    "FAILURE_TIMEOUT",
    "FarmResult",
    "JOURNAL_VERSION",
    "KIND_ENCODE_UNIT",
    "KIND_RETENTION_READ",
    "KIND_SINGLE_FLIP",
    "KIND_STORED_READ",
    "KIND_SWEEP",
    "MAX_RETRIES_ENV",
    "RunStats",
    "SHM_ENV",
    "SharedClipStore",
    "TIMEOUT_ENV",
    "TrialContext",
    "TrialExecutor",
    "TrialFailure",
    "TrialJournal",
    "TrialOutcome",
    "TrialResult",
    "TrialSpec",
    "WORKERS_ENV",
    "WorkerState",
    "alarm_capable",
    "build_encode_unit_specs",
    "build_farm_context",
    "build_sweep_specs",
    "campaign_digest",
    "content_key",
    "context_digest",
    "default_chunksize",
    "encode_farm",
    "execute_trial",
    "execute_trial_batch",
    "fork_available",
    "pack_clips",
    "register_trial_kind",
    "resolve_batch_size",
    "resolve_max_retries",
    "resolve_trial_timeout",
    "resolve_workers",
    "run_campaign",
    "run_with_deadline",
    "session_cache",
    "shared_memory_enabled",
    "spawn_trial_seeds",
    "spec_digest",
    "trial_deadline",
    "unregister_trial_kind",
]
