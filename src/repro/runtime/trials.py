"""Self-contained fault-injection trials.

A Monte Carlo campaign — the unit of work behind every exhibit in the
paper's evaluation — is a list of :class:`TrialSpec` objects executed
against one shared :class:`TrialContext`. The split mirrors the cost
structure of the workload:

* the **context** carries the heavy, trial-invariant state (the encoded
  stream, the reference and clean-decode sequences, bit-range tables,
  or a stored video plus its store) and is shipped to — and
  deserialized by — each worker exactly once;
* each **spec** is a tiny picklable record: what to damage (an error
  rate over bit ranges, a single flip position, or a storage read) and
  a pre-spawned RNG seed.

Seeds come from :meth:`numpy.random.SeedSequence.spawn`, so every trial
owns an independent, reproducible random stream. Because randomness is
fixed per spec *before* execution, results are bitwise identical at any
worker count and in any execution order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import AnalysisError
from ..codec.decoder import Decoder
from ..codec.encoded import EncodedVideo
from ..metrics.psnr import psnr as frame_psnr
from ..metrics.psnr import video_psnr
from ..storage.injection import BitRange, inject_into_payloads, inject_single_flip
from ..video.frame import VideoSequence

#: Trial kinds (plain strings keep specs trivially picklable).
KIND_SWEEP = "sweep"              #: binomial flips over bit ranges
KIND_SINGLE_FLIP = "single_flip"  #: one deterministic flip (Figure 3)
KIND_STORED_READ = "stored_read"  #: full storage round trip (Figure 11)
KIND_RETENTION_READ = "retention_read"  #: aged read with lifetime knobs
KIND_ENCODE_UNIT = "encode_unit"  #: batchable clip/GOP encode work unit

#: Upper bound on same-geometry encode units stacked into one batched
#: kernel call (``REPRO_BATCH_SIZE`` overrides).
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"
DEFAULT_BATCH_SIZE = 16


def resolve_batch_size(batch_size: Optional[int] = None) -> int:
    """Effective encode-batch width: argument, env knob, or default."""
    if batch_size is not None:
        return max(1, int(batch_size))
    raw = os.environ.get(BATCH_SIZE_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError as exc:
            raise AnalysisError(
                f"{BATCH_SIZE_ENV} must be an integer, got {raw!r}"
            ) from exc
    return DEFAULT_BATCH_SIZE

#: Failure kinds a trial can be quarantined with.
FAILURE_TIMEOUT = "timeout"  #: exceeded its wall-clock watchdog budget
FAILURE_ERROR = "error"      #: raised an exception inside the trial
FAILURE_CRASH = "crash"      #: killed its worker process (segfault/OOM/exit)


@dataclass(frozen=True)
class RunStats:
    """Wall-clock and fault accounting for one campaign.

    Attached to experiment results (``compare=False`` fields) so
    benchmark JSON and reports can show throughput — and, since the
    fault-tolerance layer, how gracefully the campaign degraded — not
    just quality.
    """

    started_unix: float      #: campaign start, seconds since the epoch
    elapsed_seconds: float   #: wall-clock duration of the campaign
    workers: int             #: resolved worker count (0 = in-process serial)
    trials: int              #: number of trials in the campaign
    #: Trials whose final outcome is a :class:`TrialFailure` (any kind).
    failed: int = 0
    #: Subset of ``failed`` abandoned only after crash/hang retries were
    #: exhausted (poison trials).
    quarantined: int = 0
    #: Chunk resubmissions performed while recovering from worker
    #: crashes or hard hangs.
    retried: int = 0
    #: Trials restored from a campaign journal instead of re-executed.
    resumed: int = 0
    #: Times the worker pool had to be respawned.
    pool_restarts: int = 0

    @property
    def trials_per_second(self) -> float:
        """Campaign throughput (infinite for a zero-duration run)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.trials / self.elapsed_seconds

    @property
    def completed(self) -> int:
        """Trials that produced a usable :class:`TrialResult`."""
        return self.trials - self.failed


@dataclass(frozen=True)
class TrialSpec:
    """One independent inject→decode→measure trial.

    Specs must stay small and picklable: anything heavy belongs in the
    shared :class:`TrialContext`. ``seed`` is a child
    :class:`numpy.random.SeedSequence` spawned by the campaign builder.
    """

    index: int
    kind: str
    rate: float = 0.0
    seed: Optional[np.random.SeedSequence] = None
    #: Index into ``TrialContext.ranges_table`` (None = all payload bits).
    ranges_ref: Optional[int] = None
    force_at_least_one: bool = True
    #: For KIND_SINGLE_FLIP: (coded frame index, bit position).
    flip_payload: Optional[int] = None
    flip_bit: Optional[int] = None
    #: For KIND_SINGLE_FLIP: display index of the frame to measure.
    measure_frame: Optional[int] = None
    #: For KIND_RETENTION_READ: retention time of the read, in days.
    t_days: Optional[float] = None
    #: For KIND_RETENTION_READ: scrub interval in days (None = never).
    scrub_days: Optional[float] = None
    #: For KIND_RETENTION_READ: re-read retry depth for detected-
    #: uncorrectable blocks (None = resolve from REPRO_READ_RETRIES).
    retries: Optional[int] = None
    #: For KIND_RETENTION_READ: conceal uncorrectable slices on decode.
    conceal: bool = False
    #: For KIND_ENCODE_UNIT: index into ``TrialContext.clips``.
    clip_ref: Optional[int] = None
    #: For KIND_ENCODE_UNIT: display-frame bounds of the work unit
    #: (None/None = the whole clip).
    unit_start: Optional[int] = None
    unit_stop: Optional[int] = None


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial, in units the campaign builder aggregates."""

    index: int
    value_db: float      #: kind-dependent measurement (see execute_trial)
    num_flips: int = 0
    forced: bool = False
    #: Kind-specific extras, JSON-serializable (journaled verbatim).
    #: Encode units report ``bits`` and per-frame PSNRs so the farm can
    #: aggregate rate and frame-weighted quality across units.
    aux: Optional[dict] = None


@dataclass(frozen=True)
class TrialFailure:
    """A trial the campaign gave up on — quarantined, not fatal.

    Campaigns degrade gracefully: a failure occupies the trial's slot in
    the (spec-ordered) result list so aggregation can skip-and-scale
    instead of aborting, and :class:`RunStats` counts it.
    """

    index: int
    kind: str          #: FAILURE_TIMEOUT | FAILURE_ERROR | FAILURE_CRASH
    message: str = ""
    attempts: int = 1  #: executions consumed before quarantining


#: What campaigns actually return per spec: a measurement or a failure.
TrialOutcome = Union[TrialResult, TrialFailure]


@dataclass
class TrialContext:
    """Heavy shared state, serialized once per worker process.

    Exactly one of the two families of fields is populated:

    * stream trials (sweep / single flip): ``encoded_blob`` (a
      serialized :class:`EncodedVideo`, deserialized once per worker),
      ``reference``/``clean``/``clean_psnr``, and ``ranges_table``;
    * stored-read trials: ``store`` (an ``ApproximateVideoStore``) and
      ``stored`` (its ``StoredVideo``), plus ``reference``.
    """

    encoded_blob: Optional[bytes] = None
    reference: Optional[VideoSequence] = None
    clean: Optional[VideoSequence] = None
    clean_psnr: Optional[float] = None
    #: Shared bit-range sets; specs point into this by index so large
    #: range lists are pickled once, not once per trial.
    ranges_table: Tuple[Tuple[BitRange, ...], ...] = ()
    store: Optional[object] = None   # ApproximateVideoStore
    stored: Optional[object] = None  # StoredVideo
    #: Encode-farm clip table: any indexable of ``VideoSequence`` — a
    #: plain tuple, or a ``SharedClipStore`` handle whose frames live in
    #: shared memory and attach lazily in each worker.
    clips: Optional[object] = None
    #: Encoder configuration for KIND_ENCODE_UNIT trials.
    encoder_config: Optional[object] = None
    #: Explicit encode-batch width for this campaign (None = resolve
    #: from ``REPRO_BATCH_SIZE``); carried here so it reaches workers.
    batch_size: Optional[int] = None


class WorkerState:
    """Per-process state built from a :class:`TrialContext` exactly once."""

    def __init__(self, context: TrialContext) -> None:
        self.context = context
        self.decoder = Decoder()
        self.encoded: Optional[EncodedVideo] = None
        self.payloads: Optional[List[bytes]] = None
        if context.encoded_blob is not None:
            self.encoded = EncodedVideo.deserialize(context.encoded_blob)
            self.payloads = self.encoded.frame_payloads()


def spawn_trial_seeds(rng: np.random.Generator,
                      count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child seeds from a generator.

    One entropy value is drawn from ``rng`` (advancing its stream, so
    repeated campaigns on the same generator get fresh children) to
    root a :class:`~numpy.random.SeedSequence`, whose ``spawn`` then
    yields one statistically independent child per trial. Because the
    draw happens up front in the campaign builder, the seeds — and
    therefore the results — are identical at any worker count.
    """
    root = np.random.SeedSequence(int(rng.integers(0, 2 ** 63)))
    return root.spawn(count)


#: Extension point: extra trial kinds beyond the built-in three.
#: Handlers registered *before* a pool spawns are inherited by forked
#: workers; tests also use this to inject crashing/hanging trials.
TrialHandler = Callable[["WorkerState", "TrialSpec"], TrialResult]
_KIND_HANDLERS: Dict[str, TrialHandler] = {}


def register_trial_kind(kind: str, handler: TrialHandler) -> None:
    """Register a custom trial kind executed by :func:`execute_trial`.

    Built-in kinds cannot be overridden; re-registering a custom kind
    replaces its handler.
    """
    if kind in (KIND_SWEEP, KIND_SINGLE_FLIP, KIND_STORED_READ,
                KIND_RETENTION_READ, KIND_ENCODE_UNIT):
        raise AnalysisError(f"cannot override built-in trial kind {kind!r}")
    _KIND_HANDLERS[kind] = handler


def unregister_trial_kind(kind: str) -> None:
    """Remove a custom trial kind (missing kinds are ignored)."""
    _KIND_HANDLERS.pop(kind, None)


def execute_trial(state: WorkerState, spec: TrialSpec) -> TrialResult:
    """Run one trial against prepared worker state.

    Measurement semantics by kind:

    * ``KIND_SWEEP`` — ``value_db`` is the (unscaled) PSNR change of the
      damaged decode versus the clean decode; the campaign builder
      applies the paper's rare-event scaling for forced flips;
    * ``KIND_SINGLE_FLIP`` — ``value_db`` is the damaged PSNR of the
      measured frame against its clean decode;
    * ``KIND_STORED_READ`` — ``value_db`` is the whole-video PSNR of a
      storage round trip against the raw reference;
    * ``KIND_RETENTION_READ`` — like ``KIND_STORED_READ`` but the read
      happens at ``spec.t_days`` of retention with the spec's scrubbing,
      re-read retry, and concealment mitigations applied.
    """
    context = state.context
    if spec.kind == KIND_SWEEP:
        if state.payloads is None or context.reference is None \
                or context.clean_psnr is None:
            raise AnalysisError("sweep trial needs an encoded-stream context")
        if spec.rate <= 0.0:
            return TrialResult(spec.index, 0.0, 0, False)
        rng = np.random.default_rng(spec.seed)
        ranges = (None if spec.ranges_ref is None
                  else context.ranges_table[spec.ranges_ref])
        outcome = inject_into_payloads(
            state.payloads, spec.rate, rng, ranges=ranges,
            force_at_least_one=spec.force_at_least_one)
        if outcome.num_flips == 0:
            return TrialResult(spec.index, 0.0, 0, False)
        damaged = state.decoder.decode(
            state.encoded.with_payloads(outcome.payloads))
        change = video_psnr(context.reference, damaged) - context.clean_psnr
        return TrialResult(spec.index, float(change), outcome.num_flips,
                           outcome.forced)
    if spec.kind == KIND_SINGLE_FLIP:
        if state.payloads is None or context.clean is None:
            raise AnalysisError("flip trial needs an encoded-stream context")
        damaged_payloads = inject_single_flip(
            state.payloads, spec.flip_payload, spec.flip_bit)
        damaged = state.decoder.decode(
            state.encoded.with_payloads(damaged_payloads))
        value = frame_psnr(context.clean[spec.measure_frame],
                           damaged[spec.measure_frame])
        return TrialResult(spec.index, float(value), 1, False)
    if spec.kind == KIND_STORED_READ:
        if context.store is None or context.stored is None \
                or context.reference is None:
            raise AnalysisError("stored-read trial needs a store context")
        rng = np.random.default_rng(spec.seed)
        damaged = context.store.read(context.stored, rng=rng)
        return TrialResult(spec.index,
                           float(video_psnr(context.reference, damaged)), 0,
                           False)
    if spec.kind == KIND_RETENTION_READ:
        if context.store is None or context.stored is None \
                or context.reference is None:
            raise AnalysisError("retention trial needs a store context")
        from ..storage.device import ScrubPolicy
        rng = np.random.default_rng(spec.seed)
        scrub = (None if spec.scrub_days is None
                 else ScrubPolicy(interval_days=spec.scrub_days))
        damaged = context.store.read(
            context.stored, rng=rng, t_days=spec.t_days, scrub=scrub,
            read_retries=spec.retries, conceal=spec.conceal)
        return TrialResult(spec.index,
                           float(video_psnr(context.reference, damaged)), 0,
                           False)
    if spec.kind == KIND_ENCODE_UNIT:
        return _execute_encode_unit(state, spec)
    handler = _KIND_HANDLERS.get(spec.kind)
    if handler is not None:
        return handler(state, spec)
    raise AnalysisError(f"unknown trial kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Encode-unit trials (the batched encode farm)
# ----------------------------------------------------------------------

def _unit_video(context: TrialContext, spec: TrialSpec) -> VideoSequence:
    """Materialize the clip slice an encode-unit spec points at."""
    if context.clips is None or context.encoder_config is None:
        raise AnalysisError(
            "encode-unit trial needs clips and an encoder config")
    clip = context.clips[spec.clip_ref]
    if spec.unit_start is None and spec.unit_stop is None:
        return clip
    start = 0 if spec.unit_start is None else spec.unit_start
    stop = len(clip) if spec.unit_stop is None else spec.unit_stop
    return clip.subsequence(start, stop)


def _encode_unit_result(spec: TrialSpec, unit: VideoSequence,
                        encoded: EncodedVideo,
                        recon: np.ndarray) -> TrialResult:
    """Score one encoded unit: rate in bits, quality per frame.

    ``value_db`` is the unit's frame-averaged PSNR; ``aux`` carries the
    per-frame PSNR list so the farm reconstructs the whole-clip
    ``video_psnr`` exactly (units partition the clip's frames, and
    ``video_psnr`` is the mean over frames).
    """
    source = unit.to_array()
    frame_values = [float(frame_psnr(source[i], recon[i]))
                    for i in range(source.shape[0])]
    bits = 8 * len(encoded.serialize())
    value = float(np.mean(frame_values))
    return TrialResult(spec.index, value, 0, False,
                       aux={"bits": bits, "frame_psnrs": frame_values})


def _execute_encode_unit(state: WorkerState, spec: TrialSpec) -> TrialResult:
    """Scalar encode-unit path: encode, decode, measure.

    This is the per-clip baseline the batched path must match bit for
    bit: the decode of the emitted stream *is* the measured
    reconstruction (the codec's closed loop guarantees recon == decode,
    which is what lets :func:`execute_trial_batch` skip the decode).
    """
    from ..codec.encoder import Encoder

    context = state.context
    unit = _unit_video(context, spec)
    encoded = Encoder(context.encoder_config).encode(unit)
    recon = state.decoder.decode(encoded).to_array()
    return _encode_unit_result(spec, unit, encoded, recon)


def execute_trial_batch(state: WorkerState,
                        specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Execute a group of encode-unit trials as one batched encode.

    All specs must be ``KIND_ENCODE_UNIT``. Same-geometry units are
    stacked through the vectorized kernels by
    :class:`~repro.codec.batch.BatchEncoder` (mixed geometry falls back
    to its scalar path internally); each unit's stream is bitwise
    identical to :func:`execute_trial` on the same spec, and the
    encoder-side reconstruction replaces the redundant decode.
    """
    from ..codec.batch import BatchEncoder

    for spec in specs:
        if spec.kind != KIND_ENCODE_UNIT:
            raise AnalysisError(
                f"execute_trial_batch got a {spec.kind!r} trial")
    context = state.context
    if context.clips is None or context.encoder_config is None:
        raise AnalysisError(
            "encode-unit trial needs clips and an encoder config")
    units = [_unit_video(context, spec) for spec in specs]
    encodeds, recons = BatchEncoder(
        context.encoder_config).encode_batch_with_recon(units)
    return [_encode_unit_result(spec, unit, encoded, recon)
            for spec, unit, encoded, recon
            in zip(specs, units, encodeds, recons)]


def build_sweep_specs(rates: Sequence[float], runs: int,
                      rng: np.random.Generator,
                      ranges_ref: Optional[int] = None,
                      force_at_least_one: bool = True) -> List[TrialSpec]:
    """The (rate × run) trial grid behind :func:`quality_sweep`."""
    seeds = spawn_trial_seeds(rng, len(rates) * runs)
    specs: List[TrialSpec] = []
    for rate_index, rate in enumerate(rates):
        for run in range(runs):
            index = rate_index * runs + run
            specs.append(TrialSpec(
                index=index, kind=KIND_SWEEP, rate=float(rate),
                seed=seeds[index], ranges_ref=ranges_ref,
                force_at_least_one=force_at_least_one))
    return specs
