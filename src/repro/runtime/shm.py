"""Shared-memory clip storage for the encode farm.

Campaign contexts ship to workers by pickling; for an encode farm whose
context is N raw clips, that re-serializes every frame byte into each
worker's pipe. :class:`SharedClipStore` packs the clips into one
``multiprocessing.shared_memory`` segment instead: the pickled handle
is a few hundred bytes (segment name + manifest + digest), and workers
map the same physical pages read-only-by-convention rather than
receiving copies.

Semantics:

* the store is an indexable of :class:`~repro.video.frame.VideoSequence`
  (``len`` / ``[i]``), interchangeable with a plain tuple of clips in
  ``TrialContext.clips``;
* ``content_digest`` identifies the pixel content, so campaign journals
  hash identically whether clips travel by value or by segment;
* attachment is lazy and cached per process (fork inherits the handle,
  spawn re-attaches by name), and the creating process unlinks the
  segment on :meth:`close` or interpreter exit;
* ``REPRO_BATCH_SHM=0`` disables the fast path: :func:`pack_clips`
  then returns a plain tuple, which every consumer handles identically.
"""

from __future__ import annotations

import atexit
import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..obs import metrics as obs_metrics
from ..video.frame import VideoSequence
from . import chaos

#: Set to ``0`` to ship clips by value instead of by shared segment.
SHM_ENV = "REPRO_BATCH_SHM"


def shared_memory_enabled() -> bool:
    """Whether contexts should pack clips into shared memory."""
    return os.environ.get(SHM_ENV, "").strip() != "0"


@dataclass(frozen=True)
class _ClipRecord:
    """Where one clip lives inside the segment."""

    offset: int
    shape: Tuple[int, int, int]
    fps: float


class SharedClipStore:
    """N clips in one shared-memory segment, pickled as a tiny handle.

    Build with :meth:`pack`; index like a tuple of
    :class:`VideoSequence`. The returned sequences hold numpy views
    into the mapped segment (zero-copy); callers must not mutate them.
    """

    def __init__(self, name: str, manifest: Tuple[_ClipRecord, ...],
                 content_digest: str, total_bytes: int,
                 segment=None, owner: bool = False) -> None:
        self.name = name
        self.manifest = manifest
        self.content_digest = content_digest
        self.total_bytes = total_bytes
        self._segment = segment
        self._owner = owner
        self._closed = False

    # -- construction ---------------------------------------------------

    @classmethod
    def pack(cls, clips: Sequence[VideoSequence]) -> "SharedClipStore":
        """Copy clips into a fresh shared segment owned by this process."""
        from multiprocessing import shared_memory

        arrays = [clip.to_array() for clip in clips]
        manifest: List[_ClipRecord] = []
        offset = 0
        digest = hashlib.sha256()
        for clip, array in zip(clips, arrays):
            if array.dtype != np.uint8:
                raise AnalysisError(
                    f"clip frames must be uint8, got {array.dtype}")
            manifest.append(_ClipRecord(offset, array.shape, clip.fps))
            digest.update(np.int64(array.shape).tobytes())
            digest.update(np.float64(clip.fps).tobytes())
            digest.update(array.tobytes())
            offset += array.nbytes
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, offset))
        try:
            for record, array in zip(manifest, arrays):
                view = np.ndarray(record.shape, dtype=np.uint8,
                                  buffer=segment.buf, offset=record.offset)
                view[...] = array
            store = cls(segment.name, tuple(manifest), digest.hexdigest(),
                        offset, segment=segment, owner=True)
        except BaseException:
            # A half-packed segment must not outlive the failed pack:
            # callers (pack_clips) fall back to by-value clips, and a
            # leaked segment would survive until reboot.
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - paranoia
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            raise
        obs_metrics.counter("shm_segments_created_total").inc()
        obs_metrics.counter("shm_clip_bytes_total").inc(offset)
        atexit.register(store.close)
        return store

    # -- pickling: ship the handle, not the bytes -----------------------

    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "manifest": self.manifest,
            "content_digest": self.content_digest,
            "total_bytes": self.total_bytes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["name"], state["manifest"],
                      state["content_digest"], state["total_bytes"])

    # -- attachment -----------------------------------------------------

    def _attach(self):
        if self._closed:
            raise AnalysisError(
                f"shared clip segment {self.name!r} is closed")
        if self._segment is None:
            from multiprocessing import shared_memory

            self._segment = _attached_segment(self.name)
            if self._segment is None:
                segment = shared_memory.SharedMemory(name=self.name)
                _cache_segment(self.name, segment)
                self._segment = segment
                # Every byte mapped here is a byte that did not travel
                # through the worker pipe as pickled context.
                obs_metrics.counter("shm_pickle_bytes_avoided_total").inc(
                    self.total_bytes)
        return self._segment

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.manifest)

    def __getitem__(self, index: int) -> VideoSequence:
        if not -len(self.manifest) <= index < len(self.manifest):
            raise IndexError(index)
        if chaos._ACTIVE is not None:
            chaos.shm_access_fault(self.name, index)
        record = self.manifest[index]
        segment = self._attach()
        stack = np.ndarray(record.shape, dtype=np.uint8,
                           buffer=segment.buf, offset=record.offset)
        return VideoSequence.from_array(stack, fps=record.fps)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Unmap; the owning process also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        segment = self._segment
        self._segment = None
        if segment is not None:
            _forget_segment(self.name)
            try:
                segment.close()
            except (OSError, BufferError):
                pass
            if self._owner:
                try:
                    segment.unlink()
                except (FileNotFoundError, OSError):
                    pass


#: Per-process attachment cache: one mapping per segment name no matter
#: how many handle copies unpickle (kept open for the process lifetime).
_ATTACHED: Dict[str, object] = {}


def _attached_segment(name: str):
    return _ATTACHED.get(name)


#: Whether the attachment-cache cleanup hook has been registered in
#: this process (forked children re-register lazily: the flag is True
#: but their inherited atexit stack still runs the handler).
_CLEANUP_REGISTERED = False


def _close_attached_segments() -> None:
    """Unmap every cached attachment at interpreter exit.

    Non-owning processes (pool workers) never unlink, but leaving the
    mappings open past interpreter teardown trips the multiprocessing
    resource tracker and — on abnormal-but-clean exits like
    ``sys.exit`` mid-campaign — can keep segments pinned after the
    owner unlinked them.
    """
    for name in list(_ATTACHED):
        segment = _ATTACHED.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - teardown
            pass


def _cache_segment(name: str, segment) -> None:
    global _CLEANUP_REGISTERED
    if not _CLEANUP_REGISTERED:
        atexit.register(_close_attached_segments)
        _CLEANUP_REGISTERED = True
    _ATTACHED[name] = segment


def _forget_segment(name: str) -> None:
    _ATTACHED.pop(name, None)


def pack_clips(clips: Sequence[VideoSequence],
               use_shared_memory: Optional[bool] = None):
    """Clips as a context-ready table: shared segment or plain tuple.

    Uses shared memory when enabled (argument overrides the
    ``REPRO_BATCH_SHM`` knob) and falls back to a tuple on any packing
    failure — consumers index both identically.
    """
    enabled = (shared_memory_enabled() if use_shared_memory is None
               else use_shared_memory)
    if enabled:
        try:
            return SharedClipStore.pack(clips)
        except (ImportError, OSError, AnalysisError):
            pass
    return tuple(clips)
