"""The batched multi-clip encode farm.

Encoding a corpus of clips one ``Encoder.encode`` call at a time leaves
two kinds of throughput on the table: the vectorized kernels never see
more than one clip of work per numpy call, and the trial machinery
ships every clip's frames to workers by value. The farm fixes both by
reframing corpus encoding as a *campaign*:

* each clip is split into GOP-aligned work units
  (:func:`~repro.codec.batch.gop_unit_bounds`) — independently
  encodable slices whose streams are bitwise identical to the
  whole-clip encode;
* the units become ``KIND_ENCODE_UNIT`` :class:`TrialSpec` records
  scheduled through the standard campaign executor, which stacks
  same-geometry units into :class:`~repro.codec.batch.BatchEncoder`
  calls (one numpy call per stage for the whole stack);
* clip frames travel to workers through one shared-memory segment
  (:class:`~repro.runtime.shm.SharedClipStore`) instead of per-worker
  pickles.

Because the units are ordinary trials, everything the runtime already
provides — journals and resume, watchdogs, crash quarantine, progress,
observability — applies to corpus encodes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..codec.batch import gop_unit_bounds
from ..codec.config import EncoderConfig
from ..errors import AnalysisError, GopStructureError
from ..obs.progress import ProgressReporter
from ..video.frame import VideoSequence
from .executor import run_campaign
from .journal import TrialJournal
from .shm import SharedClipStore, pack_clips
from .trials import (
    KIND_ENCODE_UNIT,
    RunStats,
    TrialContext,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    resolve_batch_size,
    spawn_trial_seeds,
)


@dataclass(frozen=True)
class ClipEncodeResult:
    """Aggregated rate/quality for one clip of the farm."""

    clip_index: int
    #: Total serialized stream bits over the clip's units.
    bits: int
    #: Frame-averaged PSNR of the reconstruction vs the source — the
    #: exact ``video_psnr`` value a whole-clip encode+decode would score,
    #: reassembled from the units' per-frame PSNRs.
    psnr_db: float
    units: int
    failed_units: int = 0

    @property
    def complete(self) -> bool:
        """True when every unit of the clip encoded successfully."""
        return self.failed_units == 0


@dataclass(frozen=True)
class FarmResult:
    """Everything an encode-farm run produced."""

    clips: List[ClipEncodeResult]
    stats: RunStats = field(compare=False, default=None)
    #: Raw per-unit campaign outcomes, spec-ordered (units of clip 0,
    #: then clip 1, ...). Failures occupy their slots.
    outcomes: List[TrialOutcome] = field(compare=False, default_factory=list)


def clip_unit_bounds(num_frames: int,
                     config: EncoderConfig) -> List[Tuple[int, int]]:
    """Work-unit bounds for one clip, with a whole-clip fallback.

    GOP-aligned units when the structure supports splitting; for
    configurations :func:`gop_unit_bounds` refuses with a
    :class:`GopStructureError` (``bframes > 0``), the clip becomes a
    single whole-clip unit. The scalar encoder handles B-frames, so the
    farm still encodes such corpora — it just cannot split or batch
    them (``_batchable_key`` excludes B-frame configs), trading
    granularity for correctness instead of refusing the corpus.
    """
    try:
        return gop_unit_bounds(num_frames, config)
    except GopStructureError:
        return [(0, num_frames)]


def build_encode_unit_specs(clips: Sequence[VideoSequence],
                            config: EncoderConfig,
                            rng: np.random.Generator) -> List[TrialSpec]:
    """GOP-unit trial grid for a corpus: one spec per (clip, GOP).

    Units are emitted clip-major in display order, each with its own
    spawned seed (encode units are deterministic, but seeds keep the
    journal digests campaign-unique and leave room for stochastic
    trial kinds built on top). Clips whose GOP structure cannot split
    (B-frames) contribute one whole-clip unit each.
    """
    if not clips:
        raise AnalysisError("encode farm needs at least one clip")
    bounds = [clip_unit_bounds(len(clip), config) for clip in clips]
    seeds = spawn_trial_seeds(rng, sum(len(b) for b in bounds))
    specs: List[TrialSpec] = []
    for clip_index, clip_bounds in enumerate(bounds):
        for start, stop in clip_bounds:
            specs.append(TrialSpec(
                index=len(specs), kind=KIND_ENCODE_UNIT,
                seed=seeds[len(specs)], clip_ref=clip_index,
                unit_start=start, unit_stop=stop))
    return specs


def build_farm_context(clips: Sequence[VideoSequence],
                       config: EncoderConfig,
                       use_shared_memory: Optional[bool] = None,
                       batch_size: Optional[int] = None) -> TrialContext:
    """Campaign context for an encode farm.

    Clips are packed into a :class:`SharedClipStore` when shared memory
    is enabled (``REPRO_BATCH_SHM``), else shipped as a plain tuple;
    both are indexed identically by the trial layer.
    """
    return TrialContext(clips=pack_clips(clips, use_shared_memory),
                        encoder_config=config,
                        batch_size=batch_size)


def _aggregate_clip(clip_index: int,
                    unit_outcomes: Sequence[TrialOutcome]
                    ) -> ClipEncodeResult:
    bits = 0
    frame_values: List[float] = []
    failed = 0
    for outcome in unit_outcomes:
        if not isinstance(outcome, TrialResult) or outcome.aux is None:
            failed += 1
            continue
        bits += int(outcome.aux["bits"])
        frame_values.extend(outcome.aux["frame_psnrs"])
    # Frame-weighted mean over the concatenated per-frame PSNRs: units
    # partition the clip, so with no failures this equals the whole-clip
    # video_psnr exactly. Failed units are skipped-and-scaled.
    psnr_db = float(np.mean(frame_values)) if frame_values else 0.0
    return ClipEncodeResult(clip_index=clip_index, bits=bits,
                            psnr_db=psnr_db, units=len(unit_outcomes),
                            failed_units=failed)


def encode_farm(clips: Sequence[VideoSequence],
                config: Optional[EncoderConfig] = None,
                workers: Optional[int] = None,
                batch_size: Optional[int] = None,
                chunksize: Optional[int] = None,
                timeout: Optional[float] = None,
                journal: Union[TrialJournal, str, Path, None] = None,
                progress: Union[bool, ProgressReporter, None] = None,
                rng: Optional[np.random.Generator] = None,
                use_shared_memory: Optional[bool] = None) -> FarmResult:
    """Encode a corpus of clips as one batched campaign.

    Returns per-clip rate/quality aggregates plus the campaign's
    :class:`RunStats`. Results are bitwise independent of the worker
    count, batch width, and shared-memory setting: those only change
    *how* units are executed, never what each unit encodes.

    ``chunksize`` defaults to one batch width per chunk so pool
    scheduling hands workers whole batchable groups.
    """
    config = config or EncoderConfig()
    rng = rng or np.random.default_rng(0)
    specs = build_encode_unit_specs(clips, config, rng)
    context = build_farm_context(clips, config, use_shared_memory,
                                 batch_size)
    width = resolve_batch_size(batch_size)
    if chunksize is None:
        chunksize = max(width, 1)
    try:
        outcomes, stats = run_campaign(
            context, specs, workers=workers, chunksize=chunksize,
            timeout=timeout, journal=journal, progress=progress)
    finally:
        store = context.clips
        if isinstance(store, SharedClipStore):
            store.close()
    results = []
    cursor = 0
    for clip_index, clip in enumerate(clips):
        count = len(clip_unit_bounds(len(clip), config))
        results.append(_aggregate_clip(
            clip_index, outcomes[cursor:cursor + count]))
        cursor += count
    return FarmResult(clips=results, stats=stats, outcomes=list(outcomes))
