"""Campaign execution: serial, or fanned out over worker processes.

The executor takes ``(context, specs)`` and returns results in spec
order. Parallelism is opt-in and *never* changes the numbers:

* ``workers=0`` (the default when ``REPRO_NUM_WORKERS`` is unset) runs
  every trial in-process;
* ``workers>=1`` fans trials out over a ``ProcessPoolExecutor`` with
  ``fork`` start method; the shared :class:`TrialContext` is shipped via
  the pool initializer, so each worker deserializes the encoded stream
  exactly once, and specs are submitted in chunks to amortize IPC;
* when ``fork`` is unavailable (or there is nothing to parallelize) the
  executor silently falls back to the serial path.

Campaigns are additionally **fault tolerant** — one bad trial cannot
lose the other nine hundred:

* every trial may run under a wall-clock **watchdog** (``timeout=`` /
  ``REPRO_TRIAL_TIMEOUT``): an in-process ``SIGALRM`` deadline converts
  a pathologically slow decode into a structured
  :class:`~repro.runtime.trials.TrialFailure` instead of a stalled
  campaign, and a parent-side budget backstops *hard* hangs the alarm
  cannot break (the pool is killed and respawned). Parent-side
  deadlines are scaled by queue position — a chunk waiting behind
  legitimately slow predecessors is never mistaken for a hang;
* a worker **crash** (segfault, OOM kill, ``os._exit``) breaks the
  pool; the executor respawns it with exponential backoff and re-runs
  the lost chunks. To avoid blaming innocent trials, recovery enters an
  isolation mode that runs suspect chunks one at a time — a repeat
  crash is then attributable to exactly one chunk, which is bisected
  down to the poison trial and quarantined after ``max_retries``
  resubmissions. Every respawned pool must pass a trial-free
  healthcheck; a pool that cannot even come up (a crashing
  initializer) aborts the campaign with a clear error after a few
  strikes instead of burning a retry cycle per trial;
* an optional **journal** (see :mod:`repro.runtime.journal`) checkpoints
  every completed trial so an interrupted campaign resumes with only
  the missing trials re-run; the journal is keyed to both the spec list
  and the :class:`TrialContext`, so results cannot leak across
  campaigns that share a spec grid but target different videos.

Results therefore contain one :class:`TrialOutcome` per spec — a
:class:`TrialResult`, or a :class:`TrialFailure` for quarantined trials
— and :class:`RunStats` accounts for failures, retries, resumes, and
pool restarts. Determinism is a property of the trial model, not the
executor: every spec carries its own spawned seed, so any schedule —
including one interleaved with crash recovery or resumed from a journal
— produces bitwise identical surviving results (see
``tests/runtime/``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError, TrialTimeout
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.progress import ProgressReporter, resolve_progress
from . import chaos
from .journal import TrialJournal
from .trials import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    KIND_ENCODE_UNIT,
    RunStats,
    TrialContext,
    TrialFailure,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    WorkerState,
    execute_trial,
    execute_trial_batch,
    resolve_batch_size,
)
from .watchdog import resolve_trial_timeout, trial_deadline

#: Environment knob: default worker count for every campaign.
#: ``0`` or unset means serial; ``N >= 1`` means a pool of N processes.
WORKERS_ENV = "REPRO_NUM_WORKERS"

#: Environment knob: default crash-retry budget per trial.
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"

#: Resubmissions a crash-suspect trial gets before quarantine.
DEFAULT_MAX_RETRIES = 2

#: Parent-side slack (seconds) added to a chunk's watchdog budget before
#: the pool is presumed hard-hung and killed.
DEFAULT_HANG_GRACE = 5.0

#: Base delay of the exponential pool-respawn backoff, in seconds.
DEFAULT_BACKOFF_BASE = 0.05

_BACKOFF_CAP = 2.0       #: backoff ceiling, seconds
_POLL_SECONDS = 0.05     #: future-poll period while a watchdog is armed

#: Consecutive failed post-respawn healthchecks before the campaign is
#: aborted (a pool that cannot even initialize will never make progress).
_MAX_HEALTH_STRIKES = 3

#: Wall-clock budget for one healthcheck round trip (covers the worker
#: initializer deserializing a large :class:`TrialContext`).
_HEALTHCHECK_TIMEOUT = 60.0

_worker_state: Optional[WorkerState] = None
_worker_timeout: float = 0.0


def _init_worker(context: TrialContext, timeout: float = 0.0) -> None:
    """Pool initializer: deserialize shared state once per process."""
    global _worker_state, _worker_timeout
    tracer = obs_trace.active()
    if tracer is not None:
        # The fork copied the parent's span buffer and open stack; this
        # worker must start clean and report spans under its own pid.
        tracer.reset_after_fork()
    obs_metrics.reset_registry()
    _worker_state = WorkerState(context)
    _worker_timeout = timeout


def _guarded_trial(state: WorkerState, spec: TrialSpec,
                   timeout: float) -> TrialOutcome:
    """Run one trial under the watchdog, never letting it escape.

    Timeouts and exceptions become structured :class:`TrialFailure`
    records (with the original error type preserved in the message);
    only process death can still take a chunk down.
    """
    outcome: TrialOutcome
    started = time.perf_counter()
    try:
        with obs_trace.span("trial", kind=spec.kind, index=spec.index,
                            rate=spec.rate):
            with trial_deadline(timeout, what=f"trial {spec.index}"):
                if chaos._ACTIVE is not None:
                    # Inside the watchdog and the exception guard, so an
                    # injected error/hang is absorbed exactly like a
                    # real one (a crash still kills the process).
                    chaos.trial_fault(spec.index)
                outcome = execute_trial(state, spec)
    except TrialTimeout as exc:
        outcome = TrialFailure(index=spec.index, kind=FAILURE_TIMEOUT,
                               message=str(exc))
    except Exception as exc:  # quarantine, never abort the campaign
        outcome = TrialFailure(index=spec.index, kind=FAILURE_ERROR,
                               message=f"{type(exc).__name__}: {exc}")
    registry = obs_metrics.get_registry()
    registry.counter("trials_total").inc()
    registry.histogram("trial_seconds").observe(
        time.perf_counter() - started)
    if isinstance(outcome, TrialFailure):
        registry.counter("trial_failures_total").inc()
    return outcome


def _batchable_key(state: WorkerState,
                   spec: TrialSpec) -> Optional[tuple]:
    """Geometry key for stacking, or None if the spec can't batch."""
    if spec.kind != KIND_ENCODE_UNIT:
        return None
    context = state.context
    if context.clips is None or context.encoder_config is None:
        return None
    if getattr(context.encoder_config, "bframes", 0):
        # Whole-clip fallback units (B-frame configs) must take the
        # scalar path: the batch encoder's GOP stacking assumes
        # self-contained bframes == 0 units.
        return None
    try:
        clip = context.clips[spec.clip_ref]
        start = 0 if spec.unit_start is None else spec.unit_start
        stop = len(clip) if spec.unit_stop is None else spec.unit_stop
        return (clip.height, clip.width, stop - start)
    except Exception:
        return None  # malformed spec: let the scalar path report it


def _guarded_batch(state: WorkerState,
                   group: Sequence[Tuple[int, TrialSpec]],
                   timeout: float) -> List[Tuple[int, TrialOutcome]]:
    """Run one same-geometry encode-unit group as a batched encode.

    The watchdog budget scales with group size (the batch does the work
    of ``len(group)`` trials). Any batch-level failure — timeout or
    exception — falls back to per-spec :func:`_guarded_trial` execution
    so blame lands on individual trials, exactly as if the group had
    never been batched.
    """
    specs = [spec for _, spec in group]
    started = time.perf_counter()
    try:
        with obs_trace.span("trial.batch", kind=KIND_ENCODE_UNIT,
                            size=len(specs)):
            with trial_deadline(timeout * len(specs) if timeout else 0.0,
                                what=f"encode batch of {len(specs)}"):
                results = execute_trial_batch(state, specs)
    except Exception:  # includes TrialTimeout; per-spec retry assigns blame
        obs_metrics.counter("encode_batch_fallbacks_total").inc()
        return [(pos, _guarded_trial(state, spec, timeout))
                for pos, spec in group]
    elapsed = time.perf_counter() - started
    registry = obs_metrics.get_registry()
    registry.counter("trials_total").inc(len(specs))
    registry.counter("encode_units_batched_total").inc(len(specs))
    registry.histogram("encode_batch_occupancy").observe(len(specs))
    for _ in specs:  # amortized per-trial cost, for comparable rates
        registry.histogram("trial_seconds").observe(elapsed / len(specs))
    return [(pos, result) for (pos, _), result in zip(group, results)]


def _iter_chunk_outcomes(state: WorkerState,
                         items: Sequence[Tuple[int, TrialSpec]],
                         timeout: float):
    """Execute a chunk's items, batching encode units; yields
    ``(pos, spec, outcome)`` as work completes.

    Consecutive same-geometry ``KIND_ENCODE_UNIT`` items are grouped up
    to the resolved batch width and run through the stacked kernels;
    everything else runs per-spec. Grouping only reorders *completion*
    within the chunk — the (pos, outcome) mapping is untouched, so
    campaign results are independent of batching.
    """
    batch_size = resolve_batch_size(
        getattr(state.context, "batch_size", None))
    groups: Dict[tuple, List[Tuple[int, TrialSpec]]] = {}
    for pos, spec in items:
        key = _batchable_key(state, spec) if batch_size > 1 else None
        if key is None:
            yield pos, spec, _guarded_trial(state, spec, timeout)
            continue
        group = groups.setdefault(key, [])
        group.append((pos, spec))
        if len(group) >= batch_size:
            del groups[key]
            for (out_pos, out_spec), (_, outcome) in zip(
                    group, _guarded_batch(state, group, timeout)):
                yield out_pos, out_spec, outcome
    for group in groups.values():
        if len(group) == 1:
            pos, spec = group[0]
            yield pos, spec, _guarded_trial(state, spec, timeout)
            continue
        for (out_pos, out_spec), (_, outcome) in zip(
                group, _guarded_batch(state, group, timeout)):
            yield out_pos, out_spec, outcome


def _pool_healthcheck() -> bool:
    """Sentinel task: proves a respawned pool can initialize and run.

    Runs no trial code — a failure implicates the pool itself (e.g. an
    initializer that crashes deserializing the context), not any trial.
    """
    return True


#: What one chunk ships back over the result channel: outcome records
#: plus the worker's drained observability buffers (spans, metrics).
_ChunkPayload = Tuple[List[Tuple[int, TrialOutcome]], list, dict]


def _run_chunk_remote(
        items: Sequence[Tuple[int, TrialSpec]]
) -> _ChunkPayload:
    if _worker_state is None:  # pragma: no cover - initializer always ran
        raise AnalysisError("worker used before initialization")
    records = [(pos, outcome) for pos, _, outcome in
               _iter_chunk_outcomes(_worker_state, items, _worker_timeout)]
    tracer = obs_trace.active()
    spans = tracer.drain() if tracer is not None else []
    return records, spans, obs_metrics.get_registry().drain()


def _spec_label(spec: TrialSpec) -> str:
    """Short progress-line label for a trial spec."""
    if spec.rate:
        return f"{spec.kind} rate {spec.rate:.0e}"
    return f"{spec.kind} #{spec.index}"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Explicit ``workers`` wins; otherwise ``REPRO_NUM_WORKERS`` is
    consulted; otherwise serial. Non-integer or negative settings are
    rejected with a clear :class:`AnalysisError` naming the source.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{WORKERS_ENV}={raw!r} is not an integer") from None
        if workers < 0:
            raise AnalysisError(f"{WORKERS_ENV}={raw!r} must be >= 0")
        return workers
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


def resolve_max_retries(max_retries: Optional[int] = None) -> int:
    """Resolve the crash-retry budget (``REPRO_MAX_RETRIES`` fallback)."""
    if max_retries is None:
        raw = os.environ.get(MAX_RETRIES_ENV, "").strip()
        if not raw:
            return DEFAULT_MAX_RETRIES
        try:
            max_retries = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{MAX_RETRIES_ENV}={raw!r} is not an integer") from None
        if max_retries < 0:
            raise AnalysisError(f"{MAX_RETRIES_ENV}={raw!r} must be >= 0")
        return max_retries
    if max_retries < 0:
        raise AnalysisError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_chunksize(num_specs: int, workers: int) -> int:
    """Chunk size targeting ~4 chunks per worker (amortizes IPC while
    keeping the tail balanced)."""
    if workers <= 0:
        return max(1, num_specs)
    return max(1, -(-num_specs // (workers * 4)))


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Best-effort hard kill of a pool's workers (hung-trial backstop).

    Reaches into the executor's process table; when unavailable the
    orphaned workers are simply abandoned to finish on their own.
    """
    processes = getattr(pool, "_processes", None)
    for process in list((processes or {}).values()):
        try:
            process.kill()
        except Exception:  # already dead, or platform says no
            pass


@dataclass
class _Chunk:
    """A resubmittable unit of work: (campaign position, spec) pairs."""

    items: List[Tuple[int, TrialSpec]]
    attempts: int = 0  #: crash/hang events attributed to this chunk


@dataclass
class _Counters:
    """Mutable fault accounting threaded through one campaign run."""

    quarantined: int = 0
    retried: int = 0
    resumed: int = 0
    pool_restarts: int = 0


class TrialExecutor:
    """Runs campaigns at a fixed worker count with fault tolerance.

    Args:
        workers: worker processes (None = ``REPRO_NUM_WORKERS``,
            0 = serial).
        timeout: per-trial wall-clock budget in seconds (None =
            ``REPRO_TRIAL_TIMEOUT``, 0 = no watchdog).
        max_retries: resubmissions a crash-suspect trial gets before
            quarantine (None = ``REPRO_MAX_RETRIES``, default 2).
        hang_grace: parent-side slack added to a chunk's budget before
            the pool is presumed hard-hung and killed.
        backoff_base: base delay of the exponential pool-respawn
            backoff.
    """

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 hang_grace: float = DEFAULT_HANG_GRACE,
                 backoff_base: float = DEFAULT_BACKOFF_BASE) -> None:
        self.workers = resolve_workers(workers)
        self.timeout = resolve_trial_timeout(timeout)
        self.max_retries = resolve_max_retries(max_retries)
        self.hang_grace = hang_grace
        self.backoff_base = backoff_base

    def run(self, context: TrialContext, specs: Sequence[TrialSpec],
            chunksize: Optional[int] = None,
            journal: Union[TrialJournal, str, Path, None] = None
            ) -> List[TrialOutcome]:
        """Execute all specs; outcomes come back in spec order."""
        results, _stats = self.run_with_stats(context, specs,
                                              chunksize=chunksize,
                                              journal=journal)
        return results

    def run_with_stats(self, context: TrialContext,
                       specs: Sequence[TrialSpec],
                       chunksize: Optional[int] = None,
                       journal: Union[TrialJournal, str, Path, None] = None,
                       progress: Union[bool, ProgressReporter, None] = None
                       ) -> Tuple[List[TrialOutcome], RunStats]:
        """Execute all specs; report outcomes plus fault accounting.

        ``journal`` may be a path (opened — and closed — for exactly
        this campaign) or an already-open :class:`TrialJournal`. Specs
        already present in the journal are restored, not re-run.

        ``progress`` enables a live terminal status line: pass True /
        False to override, a :class:`ProgressReporter` to render into,
        or None to consult ``REPRO_PROGRESS``. Progress (like spans and
        metrics) is observational only — it never changes outcomes.
        """
        started = time.time()
        clock = time.perf_counter()
        counters = _Counters()
        if isinstance(progress, ProgressReporter):
            reporter: Optional[ProgressReporter] = progress
        elif resolve_progress(progress):
            reporter = ProgressReporter(len(specs))
        else:
            reporter = None
        owns_journal = journal is not None and not isinstance(journal,
                                                              TrialJournal)
        journal_obj: Optional[TrialJournal]
        if owns_journal:
            journal_obj = TrialJournal.open_for(journal, specs, context)
        else:
            journal_obj = journal
        workers = self.workers
        outcomes: Dict[int, TrialOutcome] = {}
        campaign_span = obs_trace.span("campaign", trials=len(specs),
                                       workers=workers)
        try:
            with campaign_span as live:
                remaining: List[Tuple[int, TrialSpec]] = []
                for pos, spec in enumerate(specs):
                    prior = (journal_obj.completed(spec)
                             if journal_obj is not None else None)
                    if prior is not None:
                        outcomes[pos] = prior
                        counters.resumed += 1
                    else:
                        remaining.append((pos, spec))
                if reporter is not None:
                    reporter.begin(resumed=counters.resumed)
                if remaining:
                    if (workers <= 0 or len(remaining) <= 1
                            or not fork_available()):
                        workers = 0
                        self._run_serial(context, remaining, outcomes,
                                         journal_obj, reporter)
                    else:
                        self._run_pool(context, remaining, outcomes, workers,
                                       chunksize, journal_obj, counters,
                                       reporter)
                if live is not None:
                    live.attrs["workers"] = workers
                    live.attrs["resumed"] = counters.resumed
        finally:
            if reporter is not None:
                reporter.finish()
            if owns_journal and journal_obj is not None:
                journal_obj.close()
        results = [outcomes[pos] for pos in range(len(specs))]
        stats = RunStats(
            started_unix=started,
            elapsed_seconds=time.perf_counter() - clock,
            workers=workers,
            trials=len(specs),
            failed=sum(1 for r in results if isinstance(r, TrialFailure)),
            quarantined=counters.quarantined,
            retried=counters.retried,
            resumed=counters.resumed,
            pool_restarts=counters.pool_restarts,
        )
        _publish_run_stats(stats)
        return results, stats

    # -- serial path ------------------------------------------------------

    def _run_serial(self, context: TrialContext,
                    items: Sequence[Tuple[int, TrialSpec]],
                    outcomes: Dict[int, TrialOutcome],
                    journal: Optional[TrialJournal],
                    reporter: Optional[ProgressReporter] = None) -> None:
        state = WorkerState(context)
        for pos, spec, outcome in _iter_chunk_outcomes(
                state, items, self.timeout):
            outcomes[pos] = outcome
            if journal is not None and isinstance(outcome, TrialResult):
                journal.record(spec, outcome)
            if reporter is not None:
                reporter.trial_finished(isinstance(outcome, TrialResult),
                                        label=_spec_label(spec))

    # -- pool path --------------------------------------------------------

    def _run_pool(self, context: TrialContext,
                  items: Sequence[Tuple[int, TrialSpec]],
                  outcomes: Dict[int, TrialOutcome], workers: int,
                  chunksize: Optional[int],
                  journal: Optional[TrialJournal],
                  counters: _Counters,
                  reporter: Optional[ProgressReporter] = None) -> None:
        mp_context = multiprocessing.get_context("fork")
        chunk = chunksize or default_chunksize(len(items), workers)
        pending: Deque[_Chunk] = deque(
            _Chunk(list(items[i:i + chunk]))
            for i in range(0, len(items), chunk))
        suspects: Deque[_Chunk] = deque()
        max_workers = min(workers, len(items))
        pool: Optional[ProcessPoolExecutor] = None

        def open_pool() -> ProcessPoolExecutor:
            if counters.pool_restarts:
                time.sleep(min(
                    _BACKOFF_CAP,
                    self.backoff_base * 2 ** (counters.pool_restarts - 1)))
            return ProcessPoolExecutor(max_workers=max_workers,
                                       mp_context=mp_context,
                                       initializer=_init_worker,
                                       initargs=(context, self.timeout))

        def discard_pool(kill: bool) -> None:
            nonlocal pool
            if pool is None:
                return
            if kill:
                _kill_pool_processes(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
            counters.pool_restarts += 1
            if reporter is not None:
                reporter.note_pool_restart()

        def settle(victim: _Chunk, kind: str, message: str) -> None:
            # A chunk *attributably* implicated in a crash or hard hang:
            # bisect toward the poison trial, or quarantine once a
            # single trial exhausts its retries.
            attempts = victim.attempts + 1
            if len(victim.items) > 1:
                mid = len(victim.items) // 2
                suspects.append(_Chunk(victim.items[:mid], attempts))
                suspects.append(_Chunk(victim.items[mid:], attempts))
                counters.retried += 2
                if reporter is not None:
                    reporter.note_retry(2)
            elif attempts > self.max_retries:
                pos, spec = victim.items[0]
                outcomes[pos] = TrialFailure(index=spec.index, kind=kind,
                                             message=message,
                                             attempts=attempts)
                counters.quarantined += 1
                obs_metrics.counter("trials_quarantined_total").inc()
                if reporter is not None:
                    reporter.trial_finished(False, label=_spec_label(spec))
            else:
                suspects.append(_Chunk(victim.items, attempts))
                counters.retried += 1
                if reporter is not None:
                    reporter.note_retry(1)

        def absorb(victim: _Chunk, payload: _ChunkPayload) -> None:
            records, spans, metrics_snapshot = payload
            tracer = obs_trace.active()
            if tracer is not None and spans:
                tracer.absorb(spans)
            if metrics_snapshot:
                obs_metrics.get_registry().merge(metrics_snapshot)
            spec_by_pos = dict(victim.items)
            for pos, outcome in records:
                outcomes[pos] = outcome
                if journal is not None and isinstance(outcome, TrialResult):
                    journal.record(spec_by_pos[pos], outcome)
                if reporter is not None:
                    reporter.trial_finished(
                        isinstance(outcome, TrialResult),
                        label=_spec_label(spec_by_pos[pos]))

        health_strikes = 0
        try:
            while pending or suspects:
                if pool is None:
                    respawned = counters.pool_restarts > 0
                    pool = open_pool()
                    if respawned:
                        # A pool that died once gets a trial-free probe:
                        # if the *initializer* is what keeps crashing, no
                        # amount of chunk retries or bisection can ever
                        # make progress — fail fast with a clear error
                        # instead of burning a retry cycle per trial.
                        try:
                            pool.submit(_pool_healthcheck).result(
                                timeout=_HEALTHCHECK_TIMEOUT)
                        except Exception as exc:
                            health_strikes += 1
                            discard_pool(kill=True)
                            if health_strikes >= _MAX_HEALTH_STRIKES:
                                raise AnalysisError(
                                    f"worker pool failed to come back up "
                                    f"{health_strikes} times in a row "
                                    f"({type(exc).__name__}: {exc}); the "
                                    f"pool initializer appears to be "
                                    f"broken, aborting the campaign "
                                    f"(journaled results are preserved)"
                                ) from exc
                            continue
                        health_strikes = 0
                # Isolation mode: after a crash, run suspect chunks one
                # at a time so a repeat crash implicates exactly one
                # chunk; fresh chunks keep full parallelism.
                if suspects:
                    batch = [suspects.popleft()]
                else:
                    batch = list(pending)
                    pending.clear()
                inflight: Dict[Future, _Chunk] = {}
                budgets: Dict[Future, float] = {}
                submit_failed = False
                queued_items = 0
                for position, chunk_ in enumerate(batch):
                    try:
                        future = pool.submit(_run_chunk_remote, chunk_.items)
                    except (BrokenExecutor, RuntimeError):
                        # pool died before the batch was fully submitted;
                        # nothing is attributable — retry everything
                        suspects.extend(batch[position:])
                        suspects.extend(inflight.values())
                        inflight.clear()
                        budgets.clear()
                        discard_pool(kill=False)
                        submit_failed = True
                        break
                    inflight[future] = chunk_
                    queued_items += len(chunk_.items)
                    if self.timeout:
                        # Budget for the worst-case queue, not just this
                        # chunk: the whole batch is submitted at once, so
                        # a chunk may legitimately sit behind every
                        # earlier chunk's full watchdog allowance before
                        # it even starts. Anchoring each deadline at the
                        # cumulative item count guarantees a healthy but
                        # slow batch is never declared hard-hung; a real
                        # hang still trips the earliest overdue chunk
                        # first (deadlines grow with queue position), so
                        # blame stays accurate. Isolation-mode batches
                        # are single chunks, where this is exactly
                        # ``timeout * items + grace``.
                        budgets[future] = (time.monotonic()
                                           + self.timeout * queued_items
                                           + self.hang_grace)
                if submit_failed:
                    continue
                while inflight:
                    done, _not_done = wait(
                        set(inflight),
                        timeout=_POLL_SECONDS if self.timeout else None,
                        return_when=FIRST_COMPLETED)
                    broken_chunks: List[_Chunk] = []
                    for future in done:
                        victim = inflight.pop(future)
                        budgets.pop(future, None)
                        try:
                            absorb(victim, future.result())
                        except BrokenExecutor:
                            broken_chunks.append(victim)
                        except Exception as exc:
                            # result irretrievable (e.g. unpicklable);
                            # fail the chunk, not the campaign
                            for pos, spec in victim.items:
                                outcomes[pos] = TrialFailure(
                                    index=spec.index, kind=FAILURE_ERROR,
                                    message=(f"chunk result lost: "
                                             f"{type(exc).__name__}: {exc}"),
                                    attempts=victim.attempts + 1)
                                if reporter is not None:
                                    reporter.trial_finished(
                                        False, label=_spec_label(spec))
                    if broken_chunks:
                        # the pool is dead; in-flight chunks that did not
                        # report a crash were collateral, not culprits
                        collateral = list(inflight.values())
                        inflight.clear()
                        budgets.clear()
                        discard_pool(kill=False)
                        if len(broken_chunks) == 1 and not collateral:
                            settle(broken_chunks[0], FAILURE_CRASH,
                                   "worker process died executing this "
                                   "trial")
                        else:
                            suspects.extend(broken_chunks)
                            suspects.extend(collateral)
                        break
                    if self.timeout and budgets:
                        now = time.monotonic()
                        overdue = {future for future, deadline
                                   in budgets.items() if now > deadline}
                        if overdue:
                            # hard hang the in-worker alarm could not
                            # break: kill the pool, blame exactly the
                            # overdue chunks
                            for future, victim in list(inflight.items()):
                                if future in overdue:
                                    settle(victim, FAILURE_TIMEOUT,
                                           f"hard hang: trial ignored its "
                                           f"{self.timeout:.3g}s deadline")
                                else:
                                    suspects.append(victim)
                            inflight.clear()
                            budgets.clear()
                            discard_pool(kill=True)
                            break
        finally:
            if pool is not None:
                pool.shutdown(wait=True)


def _publish_run_stats(stats: RunStats) -> None:
    """Publish one campaign's :class:`RunStats` into the metrics
    registry (counters accumulate across campaigns in one process)."""
    registry = obs_metrics.get_registry()
    registry.counter("campaign_runs_total").inc()
    registry.counter("campaign_trials_total").inc(stats.trials)
    registry.counter("campaign_failed_total").inc(stats.failed)
    registry.counter("campaign_quarantined_total").inc(stats.quarantined)
    registry.counter("campaign_retried_total").inc(stats.retried)
    registry.counter("campaign_resumed_total").inc(stats.resumed)
    registry.counter("campaign_pool_restarts_total").inc(
        stats.pool_restarts)
    registry.gauge("campaign_trials_per_second").set(
        stats.trials_per_second)
    registry.gauge("campaign_workers").set(stats.workers)


def run_campaign(context: TrialContext, specs: Sequence[TrialSpec],
                 workers: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 journal: Union[TrialJournal, str, Path, None] = None,
                 progress: Union[bool, ProgressReporter, None] = None
                 ) -> Tuple[List[TrialOutcome], RunStats]:
    """One-shot convenience wrapper around :class:`TrialExecutor`."""
    executor = TrialExecutor(workers, timeout=timeout,
                             max_retries=max_retries)
    return executor.run_with_stats(context, specs, chunksize=chunksize,
                                   journal=journal, progress=progress)
