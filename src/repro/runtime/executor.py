"""Campaign execution: serial, or fanned out over worker processes.

The executor takes ``(context, specs)`` and returns results in spec
order. Parallelism is opt-in and *never* changes the numbers:

* ``workers=0`` (the default when ``REPRO_NUM_WORKERS`` is unset) runs
  every trial in-process;
* ``workers>=1`` fans trials out over a ``ProcessPoolExecutor`` with
  ``fork`` start method; the shared :class:`TrialContext` is shipped via
  the pool initializer, so each worker deserializes the encoded stream
  exactly once, and specs are submitted in chunks to amortize IPC;
* when ``fork`` is unavailable (or there is nothing to parallelize) the
  executor silently falls back to the serial path.

Determinism is a property of the trial model, not the executor: every
spec carries its own spawned seed, so any schedule produces bitwise
identical results (see ``tests/runtime/test_executor.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .trials import RunStats, TrialContext, TrialResult, TrialSpec, \
    WorkerState, execute_trial

#: Environment knob: default worker count for every campaign.
#: ``0`` or unset means serial; ``N >= 1`` means a pool of N processes.
WORKERS_ENV = "REPRO_NUM_WORKERS"

_worker_state: Optional[WorkerState] = None


def _init_worker(context: TrialContext) -> None:
    """Pool initializer: deserialize shared state once per process."""
    global _worker_state
    _worker_state = WorkerState(context)


def _run_trial_remote(spec: TrialSpec) -> TrialResult:
    if _worker_state is None:  # pragma: no cover - initializer always ran
        raise AnalysisError("worker used before initialization")
    return execute_trial(_worker_state, spec)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Explicit ``workers`` wins; otherwise ``REPRO_NUM_WORKERS`` is
    consulted; otherwise serial. Counts below zero are rejected.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{WORKERS_ENV}={raw!r} is not an integer")
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_chunksize(num_specs: int, workers: int) -> int:
    """Chunk size targeting ~4 chunks per worker (amortizes IPC while
    keeping the tail balanced)."""
    if workers <= 0:
        return max(1, num_specs)
    return max(1, -(-num_specs // (workers * 4)))


class TrialExecutor:
    """Runs campaigns at a fixed worker count."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)

    def run(self, context: TrialContext, specs: Sequence[TrialSpec],
            chunksize: Optional[int] = None) -> List[TrialResult]:
        """Execute all specs; results come back in spec order."""
        results, _stats = self.run_with_stats(context, specs,
                                              chunksize=chunksize)
        return results

    def run_with_stats(self, context: TrialContext,
                       specs: Sequence[TrialSpec],
                       chunksize: Optional[int] = None
                       ) -> Tuple[List[TrialResult], RunStats]:
        """Execute all specs and report wall-clock throughput."""
        started = time.time()
        clock = time.perf_counter()
        workers = self.workers
        if workers <= 0 or len(specs) <= 1 or not fork_available():
            workers = 0
            state = WorkerState(context)
            results = [execute_trial(state, spec) for spec in specs]
        else:
            results = self._run_pool(context, specs, workers, chunksize)
        stats = RunStats(
            started_unix=started,
            elapsed_seconds=time.perf_counter() - clock,
            workers=workers,
            trials=len(specs),
        )
        return results, stats

    def _run_pool(self, context: TrialContext, specs: Sequence[TrialSpec],
                  workers: int,
                  chunksize: Optional[int]) -> List[TrialResult]:
        mp_context = multiprocessing.get_context("fork")
        chunk = chunksize or default_chunksize(len(specs), workers)
        with ProcessPoolExecutor(max_workers=min(workers, len(specs)),
                                 mp_context=mp_context,
                                 initializer=_init_worker,
                                 initargs=(context,)) as pool:
            results = list(pool.map(_run_trial_remote, specs,
                                    chunksize=chunk))
        return results


def run_campaign(context: TrialContext, specs: Sequence[TrialSpec],
                 workers: Optional[int] = None,
                 chunksize: Optional[int] = None
                 ) -> Tuple[List[TrialResult], RunStats]:
    """One-shot convenience wrapper around :class:`TrialExecutor`."""
    executor = TrialExecutor(workers)
    return executor.run_with_stats(context, specs, chunksize=chunksize)
