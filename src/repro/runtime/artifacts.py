"""Session-scoped cache of clean encode/decode artifacts.

Nearly every experiment runner starts the same way: encode the probe
video, then decode it cleanly for the quality reference. Encoding is by
far the most expensive single step of a campaign (pure-Python motion
search + CABAC), yet the figure runners historically each redid it. The
cache keys artifacts by a content hash of ``(video, EncoderConfig)`` so
one campaign — or several runners sharing a probe video — pays for the
clean encode and decode exactly once.

Cached objects are shared, not copied: treat them as immutable (every
library path that damages a stream already works on copies via
``EncodedVideo.with_payloads``). Set ``REPRO_ARTIFACT_CACHE=0`` to
disable caching entirely.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import fields
from typing import Optional, Tuple

from ..codec.config import EncoderConfig
from ..codec.decoder import Decoder
from ..codec.encoded import EncodedVideo
from ..codec.encoder import Encoder
from ..video.frame import VideoSequence

#: Environment knob: set to ``0`` to disable the session cache.
CACHE_ENV = "REPRO_ARTIFACT_CACHE"


def content_key(video: VideoSequence, config: EncoderConfig) -> str:
    """Content hash of (raw frames, encoder settings)."""
    digest = hashlib.sha256()
    digest.update(f"{video.width}x{video.height}@{video.fps}".encode())
    for frame in video:
        digest.update(frame.tobytes())
    for field_ in fields(config):
        digest.update(f"|{field_.name}={getattr(config, field_.name)}"
                      .encode())
    return digest.hexdigest()


class ArtifactCache:
    """LRU cache of ``(EncodedVideo, clean decode)`` pairs."""

    def __init__(self, max_entries: int = 8, enabled: bool = True) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, Tuple[EncodedVideo, Optional[VideoSequence]]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached artifact (hit/miss counters retained)."""
        self._entries.clear()

    def _get(self, key: str) -> Optional[Tuple[EncodedVideo,
                                               Optional[VideoSequence]]]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _put(self, key: str,
             entry: Tuple[EncodedVideo, Optional[VideoSequence]]) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def encode(self, video: VideoSequence,
               config: EncoderConfig) -> EncodedVideo:
        """Encode ``video`` (with trace), reusing a cached result."""
        if not self.enabled:
            return Encoder(config).encode(video)
        key = content_key(video, config)
        entry = self._get(key)
        if entry is not None:
            self.hits += 1
            return entry[0]
        self.misses += 1
        encoded = Encoder(config).encode(video)
        self._put(key, (encoded, None))
        return encoded

    def clean_decode(self, video: VideoSequence,
                     config: EncoderConfig) -> VideoSequence:
        """Clean decode of the cached encode of ``video``."""
        if not self.enabled:
            return Decoder().decode(self.encode(video, config))
        key = content_key(video, config)
        entry = self._get(key)
        if entry is None:
            self.encode(video, config)
            entry = self._get(key)
        encoded, clean = entry
        if clean is None:
            clean = Decoder().decode(encoded)
            self._put(key, (encoded, clean))
        else:
            self.hits += 1
        return clean


_session_cache: Optional[ArtifactCache] = None


def session_cache() -> ArtifactCache:
    """The process-wide cache (disabled when REPRO_ARTIFACT_CACHE=0)."""
    global _session_cache
    enabled = os.environ.get(CACHE_ENV, "1").strip() != "0"
    if _session_cache is None:
        _session_cache = ArtifactCache(enabled=enabled)
    else:
        _session_cache.enabled = enabled
    return _session_cache
