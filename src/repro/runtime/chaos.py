"""Deterministic cross-layer fault injection for chaos testing.

The fault-tolerance machinery — watchdogs, crash quarantine, the
retry ladder, journal resume, the shared-memory fallback — is only
trustworthy if it is *exercised*. This module injects faults at exactly
the seams that machinery is supposed to absorb, on a reproducible
schedule:

* **device reads failing beyond the modeled rates** — an armed policy
  makes :meth:`~repro.storage.device.ApproximateDevice.store_and_read`
  corrupt extra ECC blocks *and escalate them* as uncorrectable, so the
  damage is always visible in the :class:`StorageReport` (the device's
  never-silently-corrupted contract holds even under chaos). Faults
  come in three shapes: content-keyed single blocks, content-keyed
  *correlated bursts* (contiguous block spans), and the shard-scoped
  *single-shard storm* below;
* **shard-scoped faults** — reads served through a
  :class:`~repro.service.shards.Shard` set a shard context, letting a
  policy storm one failure domain (``shard_storm``: every read off
  that shard bursts while its neighbours read clean — what replication
  and the repair daemon exist to absorb) or flake scheduled shard-read
  ordinals with :class:`~repro.errors.TransientShardError`
  (``shard_flake_reads``: what the front-end's retry/backoff ladder
  absorbs);
* **trial faults** — a chosen trial raises mid-execution (a stand-in
  for a decoder exception), hangs past its watchdog budget, or kills
  its worker process outright;
* **shared-memory segment loss** — the Nth clip access through a
  :class:`~repro.runtime.shm.SharedClipStore` fails as if the segment
  vanished mid-campaign;
* **journal tail corruption** — the Nth journaled trial record is torn
  (partially truncated) right after its fsync, exactly the state a
  mid-write crash leaves behind.

Design rules:

* **zero-cost when disarmed** — every hook site guards on a single
  ``is not None`` check (module global or registered callable); no
  policy armed means no extra work, allocation, or randomness anywhere;
* **deterministic** — fault decisions are keyed by stable coordinates
  (payload content hash for device reads, ``spec.index`` for trial
  faults, access/record ordinals for shm and journal faults) folded
  with the policy seed, never by wall clock or scheduling order. Same
  policy, same workload → same fault schedule, which
  :func:`schedule_digest` captures as a replayable fingerprint;
* **observable** — every injected fault is recorded in the event log,
  counted under ``chaos_*`` metrics, and traced as a ``chaos.fault``
  span.

Arm programmatically (``arm(policy)`` / ``disarm()``), or via the
``REPRO_CHAOS_*`` environment knobs parsed by :func:`policy_from_env`
(the CLI arms them automatically, so any exhibit can run under chaos).
Forked pool workers inherit the armed policy, like registered trial
kinds.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError, ChaosError, TransientShardError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

#: Environment knobs (all optional; any one present arms a policy when
#: the CLI calls :func:`policy_from_env`). See docs/OBSERVABILITY.md.
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
CHAOS_DEVICE_RATE_ENV = "REPRO_CHAOS_DEVICE_RATE"
CHAOS_BURST_RATE_ENV = "REPRO_CHAOS_BURST_RATE"
CHAOS_BURST_BLOCKS_ENV = "REPRO_CHAOS_BURST_BLOCKS"
CHAOS_SHARD_STORM_ENV = "REPRO_CHAOS_SHARD_STORM"
CHAOS_SHARD_FLAKES_ENV = "REPRO_CHAOS_SHARD_FLAKES"
CHAOS_FAIL_TRIALS_ENV = "REPRO_CHAOS_FAIL_TRIALS"
CHAOS_CRASH_TRIALS_ENV = "REPRO_CHAOS_CRASH_TRIALS"
CHAOS_HANG_TRIALS_ENV = "REPRO_CHAOS_HANG_TRIALS"
CHAOS_SHM_AT_ENV = "REPRO_CHAOS_SHM_AT"
CHAOS_JOURNAL_AT_ENV = "REPRO_CHAOS_JOURNAL_AT"


@dataclass(frozen=True)
class ChaosPolicy:
    """One seeded, declarative fault schedule.

    All knobs default to "no fault"; arming an all-default policy is a
    no-op that still exercises every hook's armed path. Trial-index
    tuples refer to ``TrialSpec.index`` values, so the schedule is
    independent of worker count, chunking, and execution order.
    """

    #: Folded into every keyed fault decision.
    seed: int = 0
    #: Probability that a device read of a given payload fails beyond
    #: the modeled rates. Keyed by payload content, so the decision for
    #: one payload is identical wherever and whenever it is read.
    device_fault_rate: float = 0.0
    #: Bits flipped inside the one extra failed block per faulted read.
    device_flip_bits: int = 4
    #: Probability that a device read suffers a *correlated burst*:
    #: ``device_burst_blocks`` contiguous blocks corrupted and
    #: escalated in one read — the worn-region / disturbed-neighbour
    #: failure mode single-block faults cannot model. Content-keyed
    #: like ``device_fault_rate``.
    device_burst_rate: float = 0.0
    #: Contiguous blocks corrupted per burst fault.
    device_burst_blocks: int = 4
    #: Shard id under a *single-shard storm*: device reads served from
    #: this shard fault (with the burst span above) at
    #: ``shard_storm_rate``, while every other shard reads unfaulted —
    #: the one-failure-domain disaster replication exists to absorb.
    #: Requires the read to flow through :class:`repro.service.shards.
    #: Shard` (the shard context hook); bare device reads are exempt.
    shard_storm: Optional[str] = None
    #: Per-read fault probability while the storm shard is serving.
    shard_storm_rate: float = 1.0
    #: Shard-read ordinals (0-based, process-wide) that fail with
    #: :class:`~repro.errors.TransientShardError` before touching the
    #: device — flakes the front-end's retry/backoff ladder absorbs.
    shard_flake_reads: Tuple[int, ...] = ()
    #: Trials that raise a :class:`ChaosError` mid-execution (the
    #: stand-in for a decoder blowing up on hostile input).
    fail_trials: Tuple[int, ...] = ()
    #: Trials that hang until the watchdog (or the parent's hard-hang
    #: budget) kills them.
    hang_trials: Tuple[int, ...] = ()
    #: Trials that kill their worker process outright (``os._exit``).
    #: Only meaningful under a worker pool: in serial mode this would
    #: take the campaign process down, so serial runs refuse to arm it.
    crash_trials: Tuple[int, ...] = ()
    #: Seconds a hung trial sleeps per poll (total sleep is unbounded;
    #: the watchdog is expected to fire long before).
    hang_seconds: float = 3600.0
    #: Fail the Nth (0-based) clip access through a ``SharedClipStore``
    #: as if the segment had vanished. One-shot: exactly one access
    #: fails per armed policy per process.
    shm_fail_at: Optional[int] = None
    #: Tear the Nth (0-based) journaled trial record: truncate part of
    #: it off the file tail right after the fsync, leaving exactly the
    #: torn-tail state a mid-write crash produces. One-shot.
    journal_tear_at: Optional[int] = None
    #: Bytes torn off the end of the journal file (clamped to leave a
    #: genuinely torn — not cleanly missing — record).
    journal_tear_bytes: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.device_fault_rate <= 1.0:
            raise AnalysisError(
                f"device_fault_rate must be in [0, 1], got "
                f"{self.device_fault_rate}")
        if not 0.0 <= self.device_burst_rate <= 1.0:
            raise AnalysisError(
                f"device_burst_rate must be in [0, 1], got "
                f"{self.device_burst_rate}")
        if not 0.0 <= self.shard_storm_rate <= 1.0:
            raise AnalysisError(
                f"shard_storm_rate must be in [0, 1], got "
                f"{self.shard_storm_rate}")
        if self.device_flip_bits < 1:
            raise AnalysisError(
                f"device_flip_bits must be >= 1, got "
                f"{self.device_flip_bits}")
        if self.device_burst_blocks < 1:
            raise AnalysisError(
                f"device_burst_blocks must be >= 1, got "
                f"{self.device_burst_blocks}")
        if any(i < 0 for i in self.shard_flake_reads):
            raise AnalysisError("shard_flake_reads ordinals must be >= 0")
        if self.journal_tear_bytes < 1:
            raise AnalysisError(
                f"journal_tear_bytes must be >= 1, got "
                f"{self.journal_tear_bytes}")
        for name in ("fail_trials", "hang_trials", "crash_trials"):
            if any(i < 0 for i in getattr(self, name)):
                raise AnalysisError(f"{name} indices must be >= 0")

    @property
    def quiet(self) -> bool:
        """True when this policy schedules no fault at all."""
        return (self.device_fault_rate == 0.0
                and self.device_burst_rate == 0.0
                and self.shard_storm is None
                and not self.shard_flake_reads
                and not self.fail_trials
                and not self.hang_trials and not self.crash_trials
                and self.shm_fail_at is None
                and self.journal_tear_at is None)


@dataclass
class _ChaosState:
    """Mutable per-process state of the armed policy."""

    policy: ChaosPolicy
    events: List[dict] = field(default_factory=list)
    shm_accesses: int = 0
    shm_fired: bool = False
    journal_records: int = 0
    journal_fired: bool = False
    #: Process-wide shard-read ordinal (drives flake scheduling).
    shard_reads: int = 0
    #: The shard currently serving a device read, set by the shard
    #: hook — lets content-keyed device faults become shard-scoped
    #: (the single-shard storm).
    shard_context: Optional[str] = None


#: The armed policy's state, or None (the common, zero-cost case).
#: Forked workers inherit it; spawn-based pools do not (the scenario
#: matrix and tests use fork, like the rest of the runtime).
_ACTIVE: Optional[_ChaosState] = None


def arm(policy: ChaosPolicy) -> None:
    """Arm ``policy`` process-wide, replacing any previous policy.

    Resets the event log and all fault ordinals. Also installs the
    device-read hook into :mod:`repro.storage.device` (registered
    lazily here so the storage layer never imports the runtime).
    """
    global _ACTIVE
    _ACTIVE = _ChaosState(policy)
    from ..service import shards as service_shards
    from ..storage import device as storage_device

    storage_device._CHAOS_READ_FAULT = device_read_fault
    service_shards._CHAOS_SHARD_READ = shard_read_begin
    service_shards._CHAOS_SHARD_DONE = shard_read_end


def disarm() -> None:
    """Disarm chaos: every hook returns to its zero-cost path."""
    global _ACTIVE
    _ACTIVE = None
    from ..service import shards as service_shards
    from ..storage import device as storage_device

    storage_device._CHAOS_READ_FAULT = None
    service_shards._CHAOS_SHARD_READ = None
    service_shards._CHAOS_SHARD_DONE = None


def active() -> Optional[ChaosPolicy]:
    """The armed policy, or None when chaos is disarmed."""
    return None if _ACTIVE is None else _ACTIVE.policy


def chaos_events() -> Tuple[dict, ...]:
    """Faults fired so far in this process, in firing order.

    Each event is a JSON-ready dict with a ``kind`` plus the stable
    coordinates of the fault (payload digest, trial index, ordinal).
    Faults fired inside forked workers are recorded in those workers;
    the parent-side schedule is what :func:`schedule_digest` hashes.
    """
    return tuple(_ACTIVE.events) if _ACTIVE is not None else ()


def schedule_digest() -> str:
    """Replayable fingerprint of the fired fault schedule.

    Hashes the policy (the *declared* schedule, covering faults that
    fire in workers or kill the process before logging) together with
    the parent-side event log. Same policy + same workload → same
    digest; any divergence means a nondeterministic fault path.
    """
    if _ACTIVE is None:
        return hashlib.sha256(b"chaos-disarmed").hexdigest()[:32]
    payload = {"policy": repr(_ACTIVE.policy), "events": _ACTIVE.events}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()[:32]


def _record(kind: str, **attrs) -> None:
    """Log one fired fault: event list + metrics + a point span."""
    state = _ACTIVE
    if state is None:  # pragma: no cover - callers check first
        return
    state.events.append({"kind": kind, **attrs})
    obs_metrics.counter("chaos_faults_injected_total").inc()
    obs_metrics.counter(f"chaos_{kind}_total").inc()
    with obs_trace.span("chaos.fault", kind=kind, **attrs):
        pass


# ----------------------------------------------------------------------
# Hook entry points (each guarded by the caller on ``_ACTIVE``)
# ----------------------------------------------------------------------

def device_read_fault(data: bytes) -> Optional[Tuple[np.random.Generator,
                                                     int, int]]:
    """Decide whether a device read of ``data`` fails beyond the model.

    Returns ``None`` (no fault), or ``(rng, flip_bits, burst_blocks)``
    the device uses to pick the extra failed block span and its
    flipped bits. Three escalating fault classes, checked in order:

    1. **single-shard storm** — when the serving shard (set by the
       shard-context hook) matches ``policy.shard_storm``, the read
       faults at ``shard_storm_rate`` with the burst span, keyed by
       ``sha256(seed | storm | shard_read_ordinal)`` so *every* read
       off the storm shard draws independently (the same ciphertext
       read twice can fault twice — a dying shard, not a bad payload);
    2. **correlated burst** — content-keyed like the single fault but
       corrupting ``device_burst_blocks`` contiguous blocks;
    3. **single-block fault** — the original content-keyed fault.

    Content-keyed decisions are identical wherever and whenever the
    payload is read, so the schedule cannot depend on trial ordering
    or worker scheduling; the storm is ordinal-keyed precisely because
    it models a *location*, not a payload.
    """
    state = _ACTIVE
    if state is None:
        return None
    policy = state.policy
    if (policy.shard_storm is not None
            and state.shard_context == policy.shard_storm):
        key = hashlib.sha256(
            f"{policy.seed}|storm|{state.shard_reads}".encode()).digest()
        u = int.from_bytes(key[:8], "big") / 2.0 ** 64
        if u < policy.shard_storm_rate:
            _record("device_storm", shard=policy.shard_storm,
                    ordinal=state.shard_reads - 1,
                    blocks=policy.device_burst_blocks)
            rng = np.random.default_rng(
                int.from_bytes(key[8:16], "big"))
            return (rng, policy.device_flip_bits,
                    policy.device_burst_blocks)
    content_sha = None
    if policy.device_burst_rate > 0.0:
        content_sha = hashlib.sha256(data).digest()
        key = hashlib.sha256(
            f"{policy.seed}|burst|".encode() + content_sha).digest()
        u = int.from_bytes(key[:8], "big") / 2.0 ** 64
        if u < policy.device_burst_rate:
            _record("device_burst",
                    payload_sha=content_sha.hex()[:16],
                    data_bytes=len(data),
                    blocks=policy.device_burst_blocks)
            rng = np.random.default_rng(
                int.from_bytes(key[8:16], "big"))
            return (rng, policy.device_flip_bits,
                    policy.device_burst_blocks)
    if policy.device_fault_rate <= 0.0:
        return None
    if content_sha is None:
        content_sha = hashlib.sha256(data).digest()
    key = hashlib.sha256(
        f"{policy.seed}|device|".encode() + content_sha).digest()
    u = int.from_bytes(key[:8], "big") / 2.0 ** 64
    if u >= policy.device_fault_rate:
        return None
    _record("device_read", payload_sha=content_sha.hex()[:16],
            data_bytes=len(data))
    rng = np.random.default_rng(int.from_bytes(key[8:16], "big"))
    return rng, policy.device_flip_bits, 1


def shard_read_begin(shard_id: str, key: str) -> None:
    """Shard-read hook: fire scheduled flakes, set the storm context.

    Called by :class:`repro.service.shards.Shard` before every device
    read it serves. Flake ordinals are process-wide and one-shot each;
    a flaked read raises :class:`~repro.errors.TransientShardError`
    *before* the context is set (no device read happens), which the
    store's replica walk or the front-end's backoff ladder absorbs.
    """
    state = _ACTIVE
    if state is None:
        return
    ordinal = state.shard_reads
    state.shard_reads += 1
    if ordinal in state.policy.shard_flake_reads:
        _record("shard_flake", shard=shard_id, ordinal=ordinal)
        raise TransientShardError(
            f"chaos: shard {shard_id} flaked at read {ordinal} "
            f"(key {key!r})")
    state.shard_context = shard_id


def shard_read_end() -> None:
    """Clear the storm context after a shard-served device read."""
    state = _ACTIVE
    if state is not None:
        state.shard_context = None


def trial_fault(index: int) -> None:
    """Fire any scheduled fault for trial ``index`` (hook in
    ``_guarded_trial``, inside the watchdog and exception guard).

    Raise (:class:`ChaosError`), hang (sleep until the watchdog or the
    parent's hard-hang budget intervenes), or crash the process.
    """
    state = _ACTIVE
    if state is None:
        return
    policy = state.policy
    if index in policy.crash_trials:
        _record("trial_crash", index=index)
        os._exit(86)  # simulate a segfault/OOM kill: no cleanup, no excuse
    if index in policy.hang_trials:
        _record("trial_hang", index=index)
        while True:  # the watchdog's SIGALRM breaks this sleep
            time.sleep(state.policy.hang_seconds)
    if index in policy.fail_trials:
        _record("trial_error", index=index)
        raise ChaosError(
            f"chaos: injected failure in trial {index} (policy seed "
            f"{policy.seed})")


def shm_access_fault(segment_name: str, index: int) -> None:
    """Fail the scheduled clip access as a lost shared segment.

    Counts accesses per process; when the ordinal matches
    ``shm_fail_at`` (one-shot), raises :class:`ChaosError` — exactly
    what a vanished segment produces at the call site, which the
    executor converts into a quarantinable trial failure.
    """
    state = _ACTIVE
    if state is None or state.policy.shm_fail_at is None:
        return
    ordinal = state.shm_accesses
    state.shm_accesses += 1
    if state.shm_fired or ordinal != state.policy.shm_fail_at:
        return
    state.shm_fired = True
    # The segment name is process-random (it goes in the exception, not
    # the event log, which must hash identically across runs).
    _record("shm_loss", clip=index, ordinal=ordinal)
    raise ChaosError(
        f"chaos: shared clip segment {segment_name!r} lost at access "
        f"{ordinal} (clip {index})")


def journal_record_fault(path: Path, record_bytes: int) -> None:
    """Tear the scheduled journal record's tail after its fsync.

    Truncates ``journal_tear_bytes`` (clamped so at least one byte of
    the record survives unterminated) off the file — the exact torn
    state a crash between ``write`` and a completed append leaves —
    then raises :class:`ChaosError` to kill the campaign the way the
    real crash would kill the writer. (Tearing without aborting would
    be an impossible state: a live writer gluing fresh records onto a
    torn fragment.) The caller is expected to reopen the journal and
    resume; the journal's own recovery truncates the fragment and
    re-runs the lost trial.
    """
    state = _ACTIVE
    if state is None or state.policy.journal_tear_at is None:
        return
    ordinal = state.journal_records
    state.journal_records += 1
    if state.journal_fired or ordinal != state.policy.journal_tear_at:
        return
    state.journal_fired = True
    # Tear strictly inside the record: keep >= 1 byte of it (so the
    # tail is a genuine torn fragment) and remove >= 1 byte.
    tear = max(1, min(state.policy.journal_tear_bytes, record_bytes - 1))
    size = os.path.getsize(path)
    _record("journal_tear", ordinal=ordinal, torn_bytes=tear)
    os.truncate(path, size - tear)
    raise ChaosError(
        f"chaos: journal writer crashed mid-append (record {ordinal}, "
        f"{tear} bytes torn off {path})")


# ----------------------------------------------------------------------
# Environment activation
# ----------------------------------------------------------------------

def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise AnalysisError(f"{name}={raw!r} is not an integer") from None


def _env_indices(name: str) -> Tuple[int, ...]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return ()
    try:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise AnalysisError(
            f"{name}={raw!r} is not a comma-separated list of trial "
            f"indices") from None


def policy_from_env() -> Optional[ChaosPolicy]:
    """Build a :class:`ChaosPolicy` from ``REPRO_CHAOS_*`` knobs.

    Returns None when no chaos knob is set (the overwhelmingly common
    case). Invalid values raise a clear :class:`AnalysisError` naming
    the variable. The CLI arms the result for every subcommand, so any
    exhibit — sweep, retention, farm — can run under an injected fault
    schedule without code changes.
    """
    rate_raw = os.environ.get(CHAOS_DEVICE_RATE_ENV, "").strip()
    burst_raw = os.environ.get(CHAOS_BURST_RATE_ENV, "").strip()
    storm = os.environ.get(CHAOS_SHARD_STORM_ENV, "").strip() or None
    flakes = _env_indices(CHAOS_SHARD_FLAKES_ENV)
    seed = _env_int(CHAOS_SEED_ENV)
    fail = _env_indices(CHAOS_FAIL_TRIALS_ENV)
    crash = _env_indices(CHAOS_CRASH_TRIALS_ENV)
    hang = _env_indices(CHAOS_HANG_TRIALS_ENV)
    shm_at = _env_int(CHAOS_SHM_AT_ENV)
    journal_at = _env_int(CHAOS_JOURNAL_AT_ENV)
    if (not rate_raw and not burst_raw and storm is None and not flakes
            and seed is None and not fail and not crash
            and not hang and shm_at is None and journal_at is None):
        return None

    def _rate(raw: str, env: str) -> float:
        if not raw:
            return 0.0
        try:
            return float(raw)
        except ValueError:
            raise AnalysisError(
                f"{env}={raw!r} is not a probability") from None

    burst_blocks = _env_int(CHAOS_BURST_BLOCKS_ENV)
    return ChaosPolicy(
        seed=seed or 0,
        device_fault_rate=_rate(rate_raw, CHAOS_DEVICE_RATE_ENV),
        device_burst_rate=_rate(burst_raw, CHAOS_BURST_RATE_ENV),
        device_burst_blocks=(burst_blocks if burst_blocks is not None
                             else 4),
        shard_storm=storm, shard_flake_reads=flakes,
        fail_trials=fail, crash_trials=crash,
        hang_trials=hang, shm_fail_at=shm_at,
        journal_tear_at=journal_at)
