"""Per-trial wall-clock watchdogs.

A corrupted bitstream can drive the arithmetic decoder into a
pathological (but still terminating) path that takes orders of magnitude
longer than a clean decode. Campaigns of hundreds of trials cannot
afford one such trial stalling a worker, so every trial may run under a
*deadline*: a wall-clock budget enforced in the executing process via
``signal.setitimer``/``SIGALRM``, which interrupts pure-Python work at
the next bytecode boundary and raises :class:`~repro.errors.TrialTimeout`.

Two layers of enforcement exist:

* :func:`trial_deadline` — the in-process alarm used by both the serial
  path and every pool worker; cheap, precise, and able to keep the
  worker alive (the trial fails, the worker moves on);
* the executor's parent-side budget (see ``executor.py``) — a backstop
  for *hard* hangs the alarm cannot break (native code, or a trial that
  swallows the timeout), which kills and respawns the pool.

Deadlines are opt-in: ``0`` (the default when ``REPRO_TRIAL_TIMEOUT`` is
unset) means no watchdog. SIGALRM only works in a main thread on a
POSIX platform; elsewhere :func:`trial_deadline` degrades to a no-op and
only the parent-side backstop applies.
"""

from __future__ import annotations

import math
import os
import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import AnalysisError, TrialTimeout
from ..obs import metrics as obs_metrics

#: Environment knob: default per-trial wall-clock budget in seconds.
#: ``0`` or unset disables the watchdog.
TIMEOUT_ENV = "REPRO_TRIAL_TIMEOUT"


def resolve_trial_timeout(timeout: Optional[float] = None) -> float:
    """Resolve the effective per-trial deadline in seconds.

    Explicit ``timeout`` wins; otherwise ``REPRO_TRIAL_TIMEOUT`` is
    consulted; otherwise ``0.0`` (no deadline). Negative, NaN, or
    infinite budgets are rejected with a clear :class:`AnalysisError`.
    """
    if timeout is None:
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if not raw:
            return 0.0
        try:
            timeout = float(raw)
        except ValueError:
            raise AnalysisError(
                f"{TIMEOUT_ENV}={raw!r} is not a number of seconds"
            ) from None
        if timeout < 0 or not math.isfinite(timeout):
            raise AnalysisError(
                f"{TIMEOUT_ENV}={raw!r} must be a finite number >= 0")
        return timeout
    timeout = float(timeout)
    if timeout < 0 or not math.isfinite(timeout):
        raise AnalysisError(
            f"trial timeout must be a finite number >= 0, got {timeout}")
    return timeout


def alarm_capable() -> bool:
    """True when this thread can arm a ``SIGALRM`` deadline.

    Requires a POSIX itimer *and* the main thread (CPython only delivers
    signals there).
    """
    return (hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def trial_deadline(seconds: float, what: str = "trial") -> Iterator[bool]:
    """Run the enclosed block under a wall-clock budget.

    Raises :class:`TrialTimeout` from inside the block when the budget
    expires. Yields ``True`` when a deadline is actually armed, ``False``
    when it degrades to a no-op (``seconds`` falsy, or the platform /
    thread cannot take SIGALRM). The previous handler and timer are
    always restored.
    """
    if not seconds or not alarm_capable():
        yield False
        return

    def _on_alarm(signum, frame):
        obs_metrics.counter("watchdog_expired_total").inc()
        raise TrialTimeout(
            f"{what} exceeded its {seconds:.3g}s wall-clock budget")

    obs_metrics.counter("watchdog_armed_total").inc()
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_with_deadline(fn, seconds: float, what: str = "call"):
    """Call ``fn()`` under :func:`trial_deadline`."""
    with trial_deadline(seconds, what=what):
        return fn()
