"""Campaign checkpoint/resume: an append-only journal of trial results.

A Monte Carlo campaign worth journaling is long enough that losing it to
a Ctrl-C, an OOM kill, or a machine reboot hurts. The journal makes a
campaign restartable:

* every completed :class:`TrialResult` is appended to a JSONL file —
  one fsynced line per trial, keyed by a *spec digest* — the moment the
  parent learns of it;
* on resume, specs whose digest already appears in the journal are
  restored instead of re-executed, so an interrupted campaign finishes
  by running only the missing trials;
* because each spec carries its own pre-spawned RNG seed, the merged
  results are bitwise identical to an uninterrupted run.

The digest covers everything that determines a trial's outcome — kind,
rate, range reference, flip coordinates, and the exact seed entropy —
so a journal can never leak results across campaigns: the file header
additionally pins a whole-campaign digest and mismatches are rejected.

Failures are deliberately *not* journaled: a crash or timeout may be
transient, so a resumed campaign retries them for free.

Format (one JSON object per line)::

    {"type": "header", "version": 1, "campaign": "<hex>"}
    {"type": "trial", "digest": "<hex>", "index": 3,
     "value_db": -0.25, "num_flips": 2, "forced": false}

A torn final line (the process died mid-write) is tolerated and simply
re-run; any other undecodable content is an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..errors import AnalysisError
from .trials import TrialResult, TrialSpec

#: Journal format version (bumped on incompatible record changes).
JOURNAL_VERSION = 1


def spec_digest(spec: TrialSpec) -> str:
    """A stable content digest of everything that determines a trial.

    Covers the kind, all injection coordinates, and the exact RNG seed
    (entropy + spawn key), so two specs collide only when they would
    provably produce the same :class:`TrialResult`. The float rate is
    hashed via ``float.hex`` — exact, no formatting loss.
    """
    seed = spec.seed
    if seed is None:
        seed_repr = "none"
    else:
        seed_repr = (f"{seed.entropy!r}/{tuple(seed.spawn_key)!r}"
                     f"/{seed.pool_size}")
    parts = (
        spec.kind,
        float(spec.rate).hex(),
        repr(spec.ranges_ref),
        repr(bool(spec.force_at_least_one)),
        repr(spec.flip_payload),
        repr(spec.flip_bit),
        repr(spec.measure_frame),
        seed_repr,
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]


def campaign_digest(specs: Sequence[TrialSpec]) -> str:
    """Digest of a whole campaign: the ordered list of spec digests."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec_digest(spec).encode())
        digest.update(b"\n")
    return digest.hexdigest()[:32]


class TrialJournal:
    """Append-only JSONL journal of completed trials for one campaign."""

    def __init__(self, path: Union[str, Path], campaign: str) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self.torn_lines = 0
        self._completed: Dict[str, TrialResult] = {}
        self._load_existing()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "campaign": self.campaign})

    @classmethod
    def open_for(cls, path: Union[str, Path],
                 specs: Sequence[TrialSpec]) -> "TrialJournal":
        """Open (or create) the journal for exactly this campaign."""
        return cls(path, campaign_digest(specs))

    # -- resume -----------------------------------------------------------

    def _load_existing(self) -> None:
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return
        records = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                if number == len(lines) - 1:
                    self.torn_lines += 1  # torn tail write: re-run it
                    continue
                raise AnalysisError(
                    f"journal {self.path} line {number + 1} is not JSON "
                    f"(corrupt journal; delete it to start over)"
                ) from None
        if not records:
            return
        header = records[0]
        if header.get("type") != "header":
            raise AnalysisError(
                f"journal {self.path} has no header line; not a campaign "
                f"journal")
        if header.get("version") != JOURNAL_VERSION:
            raise AnalysisError(
                f"journal {self.path} is version {header.get('version')}, "
                f"expected {JOURNAL_VERSION}")
        if header.get("campaign") != self.campaign:
            raise AnalysisError(
                f"journal {self.path} belongs to campaign "
                f"{header.get('campaign')}, not {self.campaign}; refusing "
                f"to mix results (use a fresh journal path)")
        for record in records[1:]:
            if record.get("type") != "trial":
                continue
            self._completed[record["digest"]] = TrialResult(
                index=int(record["index"]),
                value_db=float(record["value_db"]),
                num_flips=int(record["num_flips"]),
                forced=bool(record["forced"]),
            )

    def completed(self, spec: TrialSpec) -> Optional[TrialResult]:
        """The journaled result for this spec, or None if it must run."""
        return self._completed.get(spec_digest(spec))

    def __len__(self) -> int:
        return len(self._completed)

    # -- checkpoint -------------------------------------------------------

    def record(self, spec: TrialSpec, result: TrialResult) -> None:
        """Durably append one completed trial (flush + fsync)."""
        digest = spec_digest(spec)
        self._append({"type": "trial", "digest": digest,
                      "index": result.index,
                      "value_db": result.value_db,
                      "num_flips": result.num_flips,
                      "forced": result.forced})
        self._completed[digest] = result

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
