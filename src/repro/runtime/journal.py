"""Campaign checkpoint/resume: an append-only journal of trial results.

A Monte Carlo campaign worth journaling is long enough that losing it to
a Ctrl-C, an OOM kill, or a machine reboot hurts. The journal makes a
campaign restartable:

* every completed :class:`TrialResult` is appended to a JSONL file —
  one fsynced line per trial, keyed by a *spec digest* — the moment the
  parent learns of it;
* on resume, specs whose digest already appears in the journal are
  restored instead of re-executed, so an interrupted campaign finishes
  by running only the missing trials;
* because each spec carries its own pre-spawned RNG seed, the merged
  results are bitwise identical to an uninterrupted run.

The digest covers everything that determines a trial's outcome — kind,
rate, range reference, flip coordinates, and the exact seed entropy —
so a journal can never leak results across campaigns: the file header
additionally pins a whole-campaign digest (which folds in a digest of
the shared :class:`~repro.runtime.trials.TrialContext` — the encoded
stream, bit-range tables, references, and store — so the same spec grid
pointed at a different video refuses to resume) and mismatches are
rejected.

Failures are deliberately *not* journaled: a crash or timeout may be
transient, so a resumed campaign retries them for free.

Format (one JSON object per line)::

    {"type": "header", "version": 2, "campaign": "<hex>"}
    {"type": "trial", "digest": "<hex>", "index": 3,
     "value_db": -0.25, "num_flips": 2, "forced": false}

A torn final line (the process died mid-write) is tolerated: the file
is truncated back to the last complete line and the lost trial simply
re-runs. Any *terminated* undecodable line is real corruption and is an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..errors import AnalysisError
from ..obs import metrics as obs_metrics
from . import chaos
from .trials import TrialContext, TrialResult, TrialSpec

#: Journal format version (bumped on incompatible record changes).
#: Version 2 folds the trial context into the campaign digest.
#: Version 3 folds the lifetime fields (retention time, scrub interval,
#: retry depth, concealment flag) into the spec digest.
#: Version 4 folds the encode-unit fields (clip reference, unit bounds,
#: clip content, encoder config) into the digests and journals the
#: kind-specific ``aux`` payload.
JOURNAL_VERSION = 4


def spec_digest(spec: TrialSpec) -> str:
    """A stable content digest of everything that determines a trial.

    Covers the kind, all injection coordinates, and the exact RNG seed
    (entropy + spawn key), so two specs collide only when they would
    provably produce the same :class:`TrialResult`. The float rate is
    hashed via ``float.hex`` — exact, no formatting loss.
    """
    seed = spec.seed
    if seed is None:
        seed_repr = "none"
    else:
        seed_repr = (f"{seed.entropy!r}/{tuple(seed.spawn_key)!r}"
                     f"/{seed.pool_size}")
    parts = (
        spec.kind,
        float(spec.rate).hex(),
        repr(spec.ranges_ref),
        repr(bool(spec.force_at_least_one)),
        repr(spec.flip_payload),
        repr(spec.flip_bit),
        repr(spec.measure_frame),
        "none" if spec.t_days is None else float(spec.t_days).hex(),
        "none" if spec.scrub_days is None else float(spec.scrub_days).hex(),
        repr(spec.retries),
        repr(bool(spec.conceal)),
        repr(spec.clip_ref),
        repr(spec.unit_start),
        repr(spec.unit_stop),
        seed_repr,
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]


def context_digest(context: Optional[TrialContext]) -> str:
    """Digest of the trial-determining shared state.

    A spec is only half of a trial's identity: ``ranges_ref`` is an
    index into ``context.ranges_table``, and every measurement depends
    on the encoded stream (or store) the spec runs against. Two
    campaigns with identical spec grids but different videos, bit-range
    tables, or stores must therefore never share a journal — this
    digest makes them distinguishable. Components that are plain bytes
    are hashed directly; structured ones (sequences, stores) through
    their pickle, which is what already defines their identity on the
    wire to worker processes.
    """
    if context is None:
        return hashlib.sha256(b"no-context").hexdigest()[:32]
    digest = hashlib.sha256()
    if context.encoded_blob is not None:
        digest.update(b"|blob:")
        digest.update(hashlib.sha256(context.encoded_blob).digest())
    digest.update(b"|ranges:")
    digest.update(repr(context.ranges_table).encode())
    if context.clean_psnr is not None:
        digest.update(b"|clean_psnr:")
        digest.update(float(context.clean_psnr).hex().encode())
    for label, part in (("reference", context.reference),
                        ("clean", context.clean),
                        ("store", context.store),
                        ("stored", context.stored)):
        if part is None:
            continue
        digest.update(f"|{label}:".encode())
        try:
            digest.update(pickle.dumps(part, protocol=4))
        except Exception:  # unpicklable (serial-only context): best effort
            digest.update(repr(part).encode())
    if context.clips is not None:
        # Hash clip *content*, not transport: the digest must not change
        # between shared-memory and by-value clip shipping, or toggling
        # REPRO_BATCH_SHM would orphan every encode-farm journal.
        digest.update(b"|clips:")
        for index in range(len(context.clips)):
            clip = context.clips[index]
            digest.update(hashlib.sha256(clip.to_array().tobytes()).digest())
            digest.update(float(clip.fps).hex().encode())
    if context.encoder_config is not None:
        digest.update(b"|config:")
        digest.update(repr(context.encoder_config).encode())
    return digest.hexdigest()[:32]


def campaign_digest(specs: Sequence[TrialSpec],
                    context: Optional[TrialContext] = None) -> str:
    """Digest of a whole campaign: the context it runs against plus the
    ordered list of spec digests."""
    digest = hashlib.sha256()
    digest.update(context_digest(context).encode())
    digest.update(b"\n")
    for spec in specs:
        digest.update(spec_digest(spec).encode())
        digest.update(b"\n")
    return digest.hexdigest()[:32]


class TrialJournal:
    """Append-only JSONL journal of completed trials for one campaign."""

    def __init__(self, path: Union[str, Path], campaign: str) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self.torn_lines = 0
        self._completed: Dict[str, TrialResult] = {}
        self._load_existing()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "campaign": self.campaign})

    @classmethod
    def open_for(cls, path: Union[str, Path], specs: Sequence[TrialSpec],
                 context: Optional[TrialContext] = None) -> "TrialJournal":
        """Open (or create) the journal for exactly this campaign.

        ``context`` must be the :class:`TrialContext` the specs will run
        against: it is folded into the campaign digest, so one journal
        path cannot leak results between sweeps of different videos (or
        bit-range tables, or stores) that happen to share a spec grid.
        """
        return cls(path, campaign_digest(specs, context))

    # -- resume -----------------------------------------------------------

    def _load_existing(self) -> None:
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        # Every record is written as one ``json + "\n"`` call, so an
        # unterminated tail is a torn write from a process that died
        # mid-append. Truncate it away — otherwise the next append would
        # glue onto the torn fragment, and the resulting mid-file garbage
        # line would (rightly) read as corruption on the resume after
        # this one. If the *header* itself was torn, truncation empties
        # the file and ``__init__`` writes a fresh header.
        terminated_end = raw.rfind(b"\n") + 1
        if terminated_end < len(raw):
            self.torn_lines += 1  # torn tail write: re-run it
            obs_metrics.counter("journal_torn_tails_total").inc()
            os.truncate(self.path, terminated_end)
            raw = raw[:terminated_end]
        lines = raw.decode("utf-8").splitlines()
        records = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                raise AnalysisError(
                    f"journal {self.path} line {number + 1} is not JSON "
                    f"(corrupt journal; delete it to start over)"
                ) from None
        if not records:
            return
        header = records[0]
        if header.get("type") != "header":
            raise AnalysisError(
                f"journal {self.path} has no header line; not a campaign "
                f"journal")
        if header.get("version") != JOURNAL_VERSION:
            raise AnalysisError(
                f"journal {self.path} is version {header.get('version')}, "
                f"expected {JOURNAL_VERSION}")
        if header.get("campaign") != self.campaign:
            raise AnalysisError(
                f"journal {self.path} belongs to campaign "
                f"{header.get('campaign')}, not {self.campaign}; refusing "
                f"to mix results (use a fresh journal path)")
        for record in records[1:]:
            if record.get("type") != "trial":
                continue
            self._completed[record["digest"]] = TrialResult(
                index=int(record["index"]),
                value_db=float(record["value_db"]),
                num_flips=int(record["num_flips"]),
                forced=bool(record["forced"]),
                aux=record.get("aux"),
            )
        obs_metrics.counter("journal_restored_total").inc(
            len(self._completed))

    def completed(self, spec: TrialSpec) -> Optional[TrialResult]:
        """The journaled result for this spec, or None if it must run."""
        return self._completed.get(spec_digest(spec))

    def __len__(self) -> int:
        return len(self._completed)

    # -- checkpoint -------------------------------------------------------

    def record(self, spec: TrialSpec, result: TrialResult) -> None:
        """Durably append one completed trial (flush + fsync)."""
        digest = spec_digest(spec)
        record = {"type": "trial", "digest": digest,
                  "index": result.index,
                  "value_db": result.value_db,
                  "num_flips": result.num_flips,
                  "forced": result.forced}
        if result.aux is not None:
            record["aux"] = result.aux
        self._append(record)
        if chaos._ACTIVE is not None:
            # Tear the fsynced tail exactly as a mid-write crash would
            # and abort (ChaosError) like the crash kills the writer;
            # a resume re-runs the torn trial from the truncated file.
            chaos.journal_record_fault(self.path,
                                       len(json.dumps(record)) + 1)
        self._completed[digest] = result

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        obs_metrics.counter("journal_records_total").inc()

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
