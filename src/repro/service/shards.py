"""The shard pool: aged approximate devices holding ciphertext streams.

A :class:`Shard` is one failure domain of the object store — a slab of
MLC PCM with its own retention age, scrub policy, and health state.
Writes park a ciphertext blob in the shard's keyspace; reads replay the
blob through an :class:`~repro.storage.device.ApproximateDevice` **at
the shard's current age**, so a pool whose shards have aged returns
exactly the damage the lifetime model predicts — per shard, not
globally.

Health: every read's :class:`~repro.storage.device.StorageReport` is
fed back into the shard; blocks that stayed uncorrectable after the
retry ladder accumulate, and a shard crossing its quarantine threshold
is marked ``quarantined``. Quarantine is *observational*: the data is
still on the shard and reads still proceed (the ladder + concealment
downstream decide what survives) — the flag exists so operators and
the placement layer can stop routing **new** writes there. This is
what lets a chaos-armed device fault storm quarantine one shard while
keys placed on the other shards keep reading clean.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ServiceError
from ..obs import metrics as obs_metrics
from ..storage.device import ApproximateDevice, ScrubPolicy, StorageReport
from ..storage.ecc import ECCScheme
from ..storage.mlc import MLCCellModel
from . import config as service_config
from .placement import HashRing

#: Shard health states.
HEALTHY = "healthy"
QUARANTINED = "quarantined"

#: Chaos seams: :func:`repro.runtime.chaos.arm` installs shard-scoped
#: hooks here (and ``disarm`` clears them) so single-shard fault storms
#: and transient shard flakes can target one failure domain without the
#: service layer importing the runtime. ``_CHAOS_SHARD_READ(shard_id,
#: key)`` runs before a device read (it may raise
#: :class:`~repro.errors.TransientShardError`); ``_CHAOS_SHARD_DONE()``
#: runs after, armed or faulted alike.
_CHAOS_SHARD_READ = None
_CHAOS_SHARD_DONE = None


@dataclass
class Shard:
    """One failure domain: a keyed blob space over an aged device."""

    shard_id: str
    #: Retention age, in days, that reads against this shard simulate.
    #: ``None`` is the nominal scrub-point read (the paper's setting).
    t_days: Optional[float] = None
    scrub: Optional[ScrubPolicy] = None
    read_retries: int = 0
    quarantine_after: int = 3
    exact_ecc: bool = False
    cell_model: MLCCellModel = field(default_factory=MLCCellModel)
    #: Ciphertext blobs by placement key.
    blobs: Dict[str, bytes] = field(default_factory=dict)
    health: str = HEALTHY
    uncorrectable_events: int = 0
    reads: int = 0
    writes: int = 0
    #: Shard-day each key was last (re)written — repair rewrites reset
    #: this so the key's cells age from the rewrite, like a scrub.
    written_day: Dict[str, float] = field(default_factory=dict)
    repairs: int = 0
    last_repair_day: Optional[float] = None

    def write(self, key: str, data: bytes) -> None:
        """Park ``data`` under ``key`` (idempotent overwrite).

        Ordinary writes stamp day 0: the shard's ``t_days`` is the
        retention overhang for everything written through this path
        (an aged pool reads its data at that age, as the retention
        sweeps assume). Only :meth:`rewrite` — repair's refresh —
        stamps the current clock.
        """
        self.blobs[key] = data
        self.writes += 1
        self.written_day[key] = 0.0

    def has(self, key: str) -> bool:
        """True when ``key`` is stored on this shard."""
        return key in self.blobs

    def blob_sha(self, key: str) -> str:
        """SHA-256 of the at-rest blob under ``key`` (hex)."""
        blob = self.blobs.get(key)
        if blob is None:
            raise ServiceError(
                f"shard {self.shard_id}: no blob under key {key!r}")
        return hashlib.sha256(blob).hexdigest()

    def delete(self, key: str) -> None:
        """Drop ``key``'s blob (no-op when absent) — the drain step."""
        self.blobs.pop(key, None)
        self.written_day.pop(key, None)

    def rewrite(self, key: str, data: bytes, scheme: ECCScheme) -> int:
        """Repair-rewrite ``key``: fresh cells, age reset, writes charged.

        Like a scrub rewrite, the cells holding ``key`` are programmed
        anew, so subsequent reads age from *now* rather than from the
        original write. Returns the cell writes charged (same
        accounting as :attr:`~repro.storage.device.StorageReport.
        scrub_cell_writes`).
        """
        self.blobs[key] = data
        self.writes += 1
        self.written_day[key] = self.t_days or 0.0
        self.repairs += 1
        self.last_repair_day = self.t_days or 0.0
        device = ApproximateDevice(cell_model=self.cell_model)
        cells = device.cells_used(8 * len(data), scheme)
        obs_metrics.counter("service_repair_cell_writes_total").inc(cells)
        return cells

    def _key_age(self, key: str) -> Optional[float]:
        """Effective retention age of ``key`` at this shard's clock.

        ``None`` (nominal) shards stay nominal; otherwise the key has
        aged only since its last (re)write, so a repair at day ``d``
        reads as a fresh write until the shard clock moves past ``d``.
        """
        if self.t_days is None:
            return None
        return max(0.0, self.t_days - self.written_day.get(key, 0.0))

    def read(self, key: str, scheme: ECCScheme,
             rng: np.random.Generator) -> Tuple[bytes, StorageReport]:
        """Read ``key`` back through the device at this shard's age.

        The caller supplies the RNG so every read's error draw is
        seeded by the *operation*, not by shared device state — which
        is what keeps concurrent loadgen runs replayable. The report is
        also folded into the shard's health accounting.
        """
        blob = self.blobs.get(key)
        if blob is None:
            raise ServiceError(
                f"shard {self.shard_id}: no blob under key {key!r}")
        if _CHAOS_SHARD_READ is not None:
            _CHAOS_SHARD_READ(self.shard_id, key)
        try:
            device = ApproximateDevice(
                cell_model=self.cell_model, rng=rng, exact=self.exact_ecc,
                scrub=self.scrub, read_retries=self.read_retries)
            data, report = device.store_and_read(
                blob, scheme, t_days=self._key_age(key))
        finally:
            if _CHAOS_SHARD_DONE is not None:
                _CHAOS_SHARD_DONE()
        self.reads += 1
        if report.failed_blocks:
            self.note_uncorrectable(report.failed_blocks)
        return data, report

    def read_range(self, key: str, scheme: ECCScheme,
                   rng: np.random.Generator, byte_start: int,
                   byte_end: int
                   ) -> Tuple[bytes, StorageReport, int, int]:
        """Read only ``[byte_start, byte_end)`` of ``key``'s blob.

        The requested window is widened to the scheme's ECC block
        granularity (a BCH block is the smallest unit the device can
        decode; raw ``t=0`` schemes are byte-granular), replayed
        through an aged device exactly like :meth:`read`, and returned
        together with the *aligned* ``(start, end)`` byte bounds
        actually read — the report's :class:`~repro.storage.device.
        UncorrectableBlock` bit coordinates are relative to the aligned
        start, so callers shift by ``8 * aligned_start`` to recover
        blob coordinates. Health accounting is identical to a full
        read.
        """
        blob = self.blobs.get(key)
        if blob is None:
            raise ServiceError(
                f"shard {self.shard_id}: no blob under key {key!r}")
        if byte_start < 0 or byte_end < byte_start:
            raise ServiceError(
                f"shard {self.shard_id}: bad byte range "
                f"[{byte_start}, {byte_end})")
        block_bytes = scheme.data_bits // 8 if scheme.t > 0 else 1
        aligned_start = min(len(blob),
                            (byte_start // block_bytes) * block_bytes)
        aligned_end = min(len(blob),
                          -(-byte_end // block_bytes) * block_bytes)
        if _CHAOS_SHARD_READ is not None:
            _CHAOS_SHARD_READ(self.shard_id, key)
        try:
            device = ApproximateDevice(
                cell_model=self.cell_model, rng=rng, exact=self.exact_ecc,
                scrub=self.scrub, read_retries=self.read_retries)
            data, report = device.store_and_read(
                blob[aligned_start:aligned_end], scheme,
                t_days=self._key_age(key))
        finally:
            if _CHAOS_SHARD_DONE is not None:
                _CHAOS_SHARD_DONE()
        self.reads += 1
        obs_metrics.counter("service_shard_range_reads_total").inc()
        if report.failed_blocks:
            self.note_uncorrectable(report.failed_blocks)
        return data, report, aligned_start, aligned_end

    def note_uncorrectable(self, blocks: int) -> bool:
        """Record uncorrectable-block events; quarantine past threshold.

        Returns True the one time the shard transitions to
        ``quarantined`` (so callers can audit the transition exactly
        once).
        """
        self.uncorrectable_events += int(blocks)
        if (self.health == HEALTHY
                and self.uncorrectable_events >= self.quarantine_after):
            self.health = QUARANTINED
            obs_metrics.counter("service_shards_quarantined_total").inc()
            return True
        return False

    def advance(self, days: float) -> None:
        """Age the shard by ``days`` (a ``None`` age starts from 0)."""
        if days < 0:
            raise ServiceError(f"cannot age a shard by {days} days")
        self.t_days = (self.t_days or 0.0) + float(days)


class ShardPool:
    """A fixed pool of shards behind one consistent-hash ring."""

    def __init__(self, count: Optional[int] = None,
                 t_days: Optional[float] = None,
                 scrub_days: Optional[float] = None,
                 read_retries: Optional[int] = None,
                 quarantine_after: Optional[int] = None,
                 vnodes: Optional[int] = None,
                 exact_ecc: bool = False,
                 cell_model: Optional[MLCCellModel] = None) -> None:
        """Build ``count`` identically configured shards.

        All sizing arguments fall back to their ``REPRO_SERVICE_*``
        environment knobs (see :mod:`repro.service.config`).
        """
        count = service_config.resolve_shards(count)
        retries = service_config.resolve_read_retries(read_retries)
        threshold = service_config.resolve_quarantine_after(
            quarantine_after)
        scrub_days = service_config.resolve_scrub_days(scrub_days)
        scrub = (ScrubPolicy(interval_days=scrub_days)
                 if scrub_days is not None else None)
        self.shards: Dict[str, Shard] = {}
        for index in range(count):
            shard_id = f"shard-{index}"
            self.shards[shard_id] = Shard(
                shard_id=shard_id, t_days=t_days, scrub=scrub,
                read_retries=retries, quarantine_after=threshold,
                exact_ecc=exact_ecc,
                cell_model=cell_model or MLCCellModel())
        self.ring = HashRing(sorted(self.shards),
                             vnodes=service_config.resolve_vnodes(vnodes))

    def __len__(self) -> int:
        return len(self.shards)

    def place(self, key: str) -> Shard:
        """The shard owning ``key`` per the ring."""
        return self.shards[self.ring.place(key)]

    def place_n(self, key: str, r: int,
                healthy_only: bool = False) -> List[Shard]:
        """The first ``r`` distinct replica shards for ``key``.

        ``healthy_only`` skips quarantined shards while walking the
        ring — the placement the repair daemon targets when draining a
        quarantined shard. Falls back to the unfiltered walk when fewer
        than ``r`` healthy shards exist (degraded redundancy beats no
        placement at all).
        """
        if healthy_only:
            healthy = [s for s in self.shards
                       if self.shards[s].health == HEALTHY]
            if len(healthy) >= min(r, 1):
                sub = HashRing(sorted(healthy), vnodes=self.ring.vnodes)
                return [self.shards[s] for s in sub.place_n(key, r)]
        return [self.shards[s] for s in self.ring.place_n(key, r)]

    def shard(self, shard_id: str) -> Shard:
        """Look a shard up by id."""
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ServiceError(f"unknown shard {shard_id!r}") from None

    def advance_all(self, days: float) -> None:
        """Age every shard by ``days`` — the degradation-curve knob."""
        for shard in self.shards.values():
            shard.advance(days)

    def set_age(self, t_days: Optional[float]) -> None:
        """Pin every shard's retention age to ``t_days``."""
        for shard in self.shards.values():
            shard.t_days = t_days

    def quarantined(self) -> List[str]:
        """Ids of shards currently quarantined."""
        return sorted(s.shard_id for s in self.shards.values()
                      if s.health == QUARANTINED)

    def health_rows(self) -> Iterable[Tuple[str, ...]]:
        """(id, health, age, reads, uncorrectable, blobs, repairs,
        last-repair) table rows — the ``repro serve stats`` surface."""
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            age = ("nominal" if shard.t_days is None
                   else f"{shard.t_days:g}d")
            last = ("-" if shard.last_repair_day is None
                    else f"{shard.last_repair_day:g}d")
            yield (shard_id, shard.health, age, str(shard.reads),
                   str(shard.uncorrectable_events), str(len(shard.blobs)),
                   str(shard.repairs), last)
