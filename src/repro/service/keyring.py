"""Minimal keyring and per-tenant access policy.

Every tenant owns one AES-128 key + master IV pair, derived
deterministically from the keyring seed (the whole service is a
simulation harness — determinism *is* the security property under
test here, not secrecy). The keyring answers three questions:

* **what key encrypts tenant T's streams** — :meth:`Keyring.encryptor`
  builds the per-tenant :class:`~repro.crypto.streams.StreamEncryptor`
  (CTR mode: positional, so damage coordinates survive decryption);
* **may tenant A read tenant B's object** — owner always; otherwise
  only if B's policy lists A in ``shared_with`` (checked by
  :meth:`Keyring.check_read`, which raises
  :class:`~repro.errors.AccessDeniedError`);
* **is the key still live** — an operator can :meth:`Keyring.retire` a
  tenant's key; every later use raises
  :class:`~repro.errors.StaleKeyError` instead of decrypting under a
  revoked secret (the ``stale key`` failure mode in docs/SERVICE.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Set

from ..crypto.streams import StreamEncryptor
from ..errors import AccessDeniedError, ServiceError, StaleKeyError


@dataclass
class TenantPolicy:
    """Access policy for one tenant's objects."""

    tenant: str
    #: Tenants (other than the owner) allowed to read this tenant's
    #: objects. Reads decrypt under the *owner's* key either way.
    shared_with: Set[str] = field(default_factory=set)
    #: Retired tenants keep their ciphertext but lose the key.
    retired: bool = False


@dataclass(frozen=True)
class TenantKey:
    """One tenant's derived secret material."""

    tenant: str
    key: bytes
    master_iv: bytes


def derive_tenant_key(tenant: str, seed: int) -> TenantKey:
    """Deterministic per-tenant key material from the keyring seed.

    Key and IV are independent SHA-256 halves of ``seed | tenant`` —
    one-way in the tenant name, stable across processes.
    """
    digest = hashlib.sha256(f"keyring|{seed}|{tenant}".encode()).digest()
    return TenantKey(tenant=tenant, key=digest[:16], master_iv=digest[16:])


class Keyring:
    """Tenant key registry + access-policy check."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._keys: Dict[str, TenantKey] = {}
        self._policies: Dict[str, TenantPolicy] = {}

    def add_tenant(self, tenant: str) -> TenantKey:
        """Register ``tenant`` (idempotent) and return its key."""
        if not tenant or "/" in tenant:
            raise ServiceError(
                f"tenant names must be non-empty and '/'-free, got "
                f"{tenant!r}")
        if tenant not in self._keys:
            self._keys[tenant] = derive_tenant_key(tenant, self.seed)
            self._policies[tenant] = TenantPolicy(tenant=tenant)
        return self._keys[tenant]

    def tenants(self) -> list:
        """Registered tenant names, sorted."""
        return sorted(self._keys)

    def policy(self, tenant: str) -> TenantPolicy:
        """The tenant's policy record (must be registered)."""
        try:
            return self._policies[tenant]
        except KeyError:
            raise ServiceError(f"unknown tenant {tenant!r}") from None

    def share(self, owner: str, reader: str) -> None:
        """Grant ``reader`` read access to ``owner``'s objects."""
        self.policy(owner).shared_with.add(reader)

    def revoke(self, owner: str, reader: str) -> None:
        """Remove ``reader`` from ``owner``'s share list."""
        self.policy(owner).shared_with.discard(reader)

    def retire(self, tenant: str) -> None:
        """Retire the tenant's key: later key fetches raise
        :class:`StaleKeyError`."""
        self.policy(tenant).retired = True

    def check_read(self, owner: str, reader: str) -> None:
        """Raise :class:`AccessDeniedError` unless ``reader`` may read
        ``owner``'s objects."""
        if reader == owner:
            return
        if reader not in self.policy(owner).shared_with:
            raise AccessDeniedError(
                f"tenant {reader!r} may not read objects owned by "
                f"{owner!r}")

    def key(self, tenant: str) -> TenantKey:
        """The tenant's live key; raises :class:`StaleKeyError` if
        retired."""
        policy = self.policy(tenant)
        if policy.retired:
            raise StaleKeyError(
                f"tenant {tenant!r}'s key has been retired; its "
                f"ciphertext is unreadable until the operator restores "
                f"a key")
        return self._keys[tenant]

    def encryptor(self, tenant: str) -> StreamEncryptor:
        """A CTR-mode stream encryptor under the tenant's live key."""
        material = self.key(tenant)
        return StreamEncryptor(key=material.key,
                               master_iv=material.master_iv, mode="CTR")
