"""Approximate video store *service*: shards, keys, queue, loadgen.

This package lifts the single-video :class:`~repro.core.pipeline.
ApproximateVideoStore` facade into an operable multi-tenant service:

* :mod:`~repro.service.placement` — consistent-hash ring mapping
  stream keys onto shards;
* :mod:`~repro.service.shards` — the shard pool: aged approximate
  devices with health/quarantine accounting;
* :mod:`~repro.service.keyring` — per-tenant AES keys and the
  share/retire access policy;
* :mod:`~repro.service.store` — the content-addressed object store
  and the four-outcome read ladder (clean / corrected / concealed /
  refused);
* :mod:`~repro.service.frontend` — asyncio admission layer: bounded
  ingest queue feeding the batched encode kernel;
* :mod:`~repro.service.audit` — replay-stable append-only audit log;
* :mod:`~repro.service.repair` — read-repair queue and the
  deterministic background repair pass (the self-healing half);
* :mod:`~repro.service.loadgen` — the seeded, digest-replayable load
  generator behind ``repro loadgen``;
* :mod:`~repro.service.config` — the ``REPRO_SERVICE_*`` env surface.

Operator documentation lives in docs/SERVICE.md.
"""

from .audit import AuditEvent, AuditLog
from .cache import CachedGop, GopCache
from .frontend import ServiceFrontend
from .keyring import Keyring, TenantKey, TenantPolicy, derive_tenant_key
from .loadgen import (
    LoadgenReport,
    build_plan,
    run_durability_contrast,
    run_loadgen,
)
from .placement import HashRing
from .repair import (
    RepairPassReport,
    RepairQueue,
    RepairTicket,
    replication_health,
    run_repair_pass,
    scan_placement,
)
from .shards import Shard, ShardPool
from .store import (
    CLEAN,
    CONCEALED,
    CORRECTED,
    REFUSED,
    FrameReadResult,
    ObjectRecord,
    ReadResult,
    VideoObjectStore,
    object_id_for,
    stream_key,
)

__all__ = [
    "AuditEvent",
    "AuditLog",
    "CLEAN",
    "CONCEALED",
    "CORRECTED",
    "CachedGop",
    "FrameReadResult",
    "GopCache",
    "HashRing",
    "Keyring",
    "LoadgenReport",
    "ObjectRecord",
    "REFUSED",
    "ReadResult",
    "RepairPassReport",
    "RepairQueue",
    "RepairTicket",
    "ServiceFrontend",
    "Shard",
    "ShardPool",
    "TenantKey",
    "TenantPolicy",
    "VideoObjectStore",
    "build_plan",
    "derive_tenant_key",
    "object_id_for",
    "replication_health",
    "run_durability_contrast",
    "run_loadgen",
    "run_repair_pass",
    "scan_placement",
    "stream_key",
]
