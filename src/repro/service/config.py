"""Service configuration: the ``REPRO_SERVICE_*`` environment surface.

Every operator-facing knob of the serving layer lives here, resolved
with the library-wide convention that **explicit arguments always win
over the environment** (matching ``REPRO_NUM_WORKERS`` and friends —
see docs/OBSERVABILITY.md). The knobs themselves are documented for
operators in docs/SERVICE.md.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import ServiceError

#: Number of shards in the pool.
SHARDS_ENV = "REPRO_SERVICE_SHARDS"
#: Replicas written per reliability stream (1 = the pre-replication
#: single-copy store).
REPLICAS_ENV = "REPRO_SERVICE_REPLICAS"
#: Bounded front-end retry attempts for overload/transient faults.
RETRY_ATTEMPTS_ENV = "REPRO_SERVICE_RETRY_ATTEMPTS"
#: Base backoff delay in milliseconds for front-end retries.
BACKOFF_MS_ENV = "REPRO_SERVICE_BACKOFF_MS"
#: Max repair tickets drained per background repair pass.
REPAIR_BATCH_ENV = "REPRO_REPAIR_BATCH"
#: Concealed-GOP cache admissions survive this many hits before they
#: are expired so a repaired read can replace them.
REPAIR_CACHE_TTL_ENV = "REPRO_REPAIR_CACHE_TTL"
#: Bounded ingest-queue depth; a full queue sheds new ingests.
QUEUE_DEPTH_ENV = "REPRO_SERVICE_QUEUE_DEPTH"
#: Max clips drained from the ingest queue into one encode batch.
INGEST_BATCH_ENV = "REPRO_SERVICE_INGEST_BATCH"
#: Re-read retry depth for detected-uncorrectable blocks on the read
#: path (the service-scoped override of ``REPRO_READ_RETRIES``).
READ_RETRIES_ENV = "REPRO_SERVICE_READ_RETRIES"
#: Scrub interval in days applied to every shard (unset = no scrubbing).
SCRUB_DAYS_ENV = "REPRO_SERVICE_SCRUB_DAYS"
#: Uncorrectable-block events before a shard is quarantined.
QUARANTINE_AFTER_ENV = "REPRO_SERVICE_QUARANTINE_AFTER"
#: Virtual nodes per shard on the placement ring.
VNODES_ENV = "REPRO_SERVICE_VNODES"
#: Decoded-GOP LRU capacity for the random-access read path
#: (0 disables caching without disabling partial reads).
SEEK_CACHE_ENV = "REPRO_SEEK_CACHE"
#: Any non-empty value forces ``get_frame`` onto the whole-clip decode
#: path — the escape hatch if the seek fast path misbehaves.
SEEK_DISABLE_ENV = "REPRO_SEEK_DISABLE"

_DEFAULTS = {
    SHARDS_ENV: 4,
    REPLICAS_ENV: 2,
    QUEUE_DEPTH_ENV: 64,
    INGEST_BATCH_ENV: 8,
    READ_RETRIES_ENV: 1,
    QUARANTINE_AFTER_ENV: 3,
    VNODES_ENV: 64,
    SEEK_CACHE_ENV: 16,
    RETRY_ATTEMPTS_ENV: 3,
    BACKOFF_MS_ENV: 50,
    REPAIR_BATCH_ENV: 32,
    REPAIR_CACHE_TTL_ENV: 1,
}


def _resolve_int(explicit: Optional[int], env: str, minimum: int) -> int:
    """Explicit value, else the env var, else the default — validated."""
    if explicit is None:
        raw = os.environ.get(env, "").strip()
        if not raw:
            value = _DEFAULTS[env]
        else:
            try:
                value = int(raw)
            except ValueError:
                raise ServiceError(
                    f"{env}={raw!r} is not an integer") from None
    else:
        value = int(explicit)
    if value < minimum:
        raise ServiceError(f"{env} must be >= {minimum}, got {value}")
    return value


def resolve_shards(explicit: Optional[int] = None) -> int:
    """Shard-pool width (``REPRO_SERVICE_SHARDS``, default 4)."""
    return _resolve_int(explicit, SHARDS_ENV, 1)


def resolve_replicas(explicit: Optional[int] = None) -> int:
    """Replicas per stream (``REPRO_SERVICE_REPLICAS``, default 2)."""
    return _resolve_int(explicit, REPLICAS_ENV, 1)


def resolve_retry_attempts(explicit: Optional[int] = None) -> int:
    """Front-end retry bound (``REPRO_SERVICE_RETRY_ATTEMPTS``,
    default 3 attempts total)."""
    return _resolve_int(explicit, RETRY_ATTEMPTS_ENV, 1)


def resolve_backoff_ms(explicit: Optional[int] = None) -> int:
    """Base front-end backoff (``REPRO_SERVICE_BACKOFF_MS``,
    default 50 ms, doubled per retry)."""
    return _resolve_int(explicit, BACKOFF_MS_ENV, 0)


def resolve_repair_batch(explicit: Optional[int] = None) -> int:
    """Repair-pass drain width (``REPRO_REPAIR_BATCH``, default 32
    tickets per pass)."""
    return _resolve_int(explicit, REPAIR_BATCH_ENV, 1)


def resolve_repair_cache_ttl(explicit: Optional[int] = None) -> int:
    """Concealed-GOP cache TTL in hits (``REPRO_REPAIR_CACHE_TTL``,
    default 1: serve one hit, then force a re-fetch)."""
    return _resolve_int(explicit, REPAIR_CACHE_TTL_ENV, 0)


def resolve_queue_depth(explicit: Optional[int] = None) -> int:
    """Ingest-queue bound (``REPRO_SERVICE_QUEUE_DEPTH``, default 64)."""
    return _resolve_int(explicit, QUEUE_DEPTH_ENV, 1)


def resolve_ingest_batch(explicit: Optional[int] = None) -> int:
    """Encode-batch drain width (``REPRO_SERVICE_INGEST_BATCH``,
    default 8)."""
    return _resolve_int(explicit, INGEST_BATCH_ENV, 1)


def resolve_read_retries(explicit: Optional[int] = None) -> int:
    """Service read-ladder depth (``REPRO_SERVICE_READ_RETRIES``,
    default 1)."""
    return _resolve_int(explicit, READ_RETRIES_ENV, 0)


def resolve_quarantine_after(explicit: Optional[int] = None) -> int:
    """Shard-quarantine threshold (``REPRO_SERVICE_QUARANTINE_AFTER``,
    default 3 uncorrectable-block events)."""
    return _resolve_int(explicit, QUARANTINE_AFTER_ENV, 1)


def resolve_vnodes(explicit: Optional[int] = None) -> int:
    """Placement-ring virtual nodes (``REPRO_SERVICE_VNODES``,
    default 64)."""
    return _resolve_int(explicit, VNODES_ENV, 1)


def resolve_seek_cache(explicit: Optional[int] = None) -> int:
    """Decoded-GOP cache capacity (``REPRO_SEEK_CACHE``, default 16;
    0 disables caching)."""
    return _resolve_int(explicit, SEEK_CACHE_ENV, 0)


def seek_disabled() -> bool:
    """True when ``REPRO_SEEK_DISABLE`` forces whole-clip decode."""
    raw = os.environ.get(SEEK_DISABLE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


def resolve_scrub_days(explicit: Optional[float] = None
                       ) -> Optional[float]:
    """Shard scrub interval in days (``REPRO_SERVICE_SCRUB_DAYS``,
    unset = no scrubbing)."""
    if explicit is not None:
        value = float(explicit)
    else:
        raw = os.environ.get(SCRUB_DAYS_ENV, "").strip()
        if not raw or raw.lower() in ("none", "off", "never"):
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ServiceError(
                f"{SCRUB_DAYS_ENV}={raw!r} is not a number of days"
            ) from None
    if value <= 0:
        raise ServiceError(
            f"{SCRUB_DAYS_ENV} must be > 0 days, got {value}")
    return value
