"""Async front-end: a bounded ingest queue in front of the store.

:class:`ServiceFrontend` is the service's admission layer. Ingests do
not encode inline — they park the clip on a bounded queue and await a
future; a single worker coroutine drains the queue in batches of up to
``ingest_batch`` clips and hands each batch (grouped by tenant) to
:meth:`~repro.service.store.VideoObjectStore.put_many`, which routes
same-geometry clips through the vectorized encode kernel. Reads bypass
the queue entirely and run on the default executor so they stay
responsive while an encode batch is in flight.

Backpressure is explicit: when the queue is full the front-end sheds
the ingest with :class:`~repro.errors.ServiceOverloadError` instead of
buffering without bound — the ``queue overflow`` failure mode in
docs/SERVICE.md. Queue depth is exported continuously as the
``service_queue_depth`` gauge.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Awaitable, Callable, List, Optional, Tuple

import numpy as np

from ..errors import ServiceOverloadError, TransientShardError
from ..obs import metrics as obs_metrics
from ..video.frame import VideoSequence
from . import config as service_config
from .repair import RepairPassReport, run_repair_pass
from .store import FrameReadResult, ReadResult, VideoObjectStore

#: One queued ingest: (tenant, clip, future resolving to the object id).
_QueueItem = Tuple[str, VideoSequence, "asyncio.Future"]


class ServiceFrontend:
    """Bounded-queue async facade over a :class:`VideoObjectStore`."""

    def __init__(self, store: Optional[VideoObjectStore] = None,
                 queue_depth: Optional[int] = None,
                 ingest_batch: Optional[int] = None,
                 retry_attempts: Optional[int] = None,
                 backoff_ms: Optional[int] = None,
                 repair_interval_s: Optional[float] = None) -> None:
        # ``store or ...`` would discard an *empty* store (len() == 0).
        self.store = store if store is not None else VideoObjectStore()
        self.queue_depth = service_config.resolve_queue_depth(queue_depth)
        self.ingest_batch = service_config.resolve_ingest_batch(
            ingest_batch)
        self.retry_attempts = service_config.resolve_retry_attempts(
            retry_attempts)
        self.backoff_ms = service_config.resolve_backoff_ms(backoff_ms)
        #: Seconds between background repair passes; ``None`` disables
        #: the daemon task (repair still runs via :meth:`repair_pass`).
        self.repair_interval_s = repair_interval_s
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._repair_daemon: Optional[asyncio.Task] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and launch the ingest worker (and, when
        ``repair_interval_s`` is set, the background repair daemon)."""
        if self._worker is not None:
            return
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._worker = asyncio.create_task(self._ingest_worker())
        if self.repair_interval_s is not None:
            self._repair_daemon = asyncio.create_task(
                self._repair_loop())

    async def stop(self) -> None:
        """Drain every queued ingest, then retire the workers."""
        if self._worker is None:
            return
        await self._queue.join()
        for task in (self._worker, self._repair_daemon):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._worker = None
        self._repair_daemon = None
        self._queue = None
        obs_metrics.gauge("service_queue_depth").set(0)

    # -- client surface ---------------------------------------------------

    async def ingest(self, tenant: str, video: VideoSequence) -> str:
        """Queue one clip for encoding; resolves to its object id.

        Raises :class:`ServiceOverloadError` immediately when the
        queue is full — callers retry with backoff or drop the clip.
        """
        if self._queue is None:
            raise ServiceOverloadError(
                "front-end is not started; call start() first")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        try:
            self._queue.put_nowait((tenant, video, future))
        except asyncio.QueueFull:
            obs_metrics.counter("service_overload_total").inc()
            self.store.audit.record("overload", tenant,
                                    detail=f"queue full "
                                           f"({self.queue_depth})")
            raise ServiceOverloadError(
                f"ingest queue full ({self.queue_depth} clips); "
                f"shedding the request") from None
        obs_metrics.gauge("service_queue_depth").set(
            self._queue.qsize())
        return await future

    async def read(self, tenant: str, object_id: str,
                   reader: Optional[str] = None,
                   rng: Optional[np.random.Generator] = None
                   ) -> ReadResult:
        """Serve one read off the event loop (default executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.store.get, tenant, object_id,
                          reader=reader, rng=rng))

    async def read_frame(self, tenant: str, object_id: str,
                         display: int, reader: Optional[str] = None,
                         rng: Optional[np.random.Generator] = None
                         ) -> FrameReadResult:
        """Serve one random-access frame off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.store.get_frame, tenant, object_id,
                          display, reader=reader, rng=rng))

    # -- retry / backoff / hedging ----------------------------------------

    def backoff_delays(self, attempts: Optional[int] = None,
                       backoff_ms: Optional[int] = None) -> List[float]:
        """The deterministic backoff schedule, in seconds.

        ``attempts`` total tries yield ``attempts - 1`` sleeps of
        ``backoff_ms * 2^i`` milliseconds — no jitter, so a retried
        run replays bit-identically (the fleet-desynchronization role
        of jitter is meaningless in a single-process simulation).
        """
        attempts = (self.retry_attempts if attempts is None
                    else service_config.resolve_retry_attempts(attempts))
        base = (self.backoff_ms if backoff_ms is None
                else service_config.resolve_backoff_ms(backoff_ms))
        return [base * (2 ** i) / 1000.0 for i in range(attempts - 1)]

    async def _with_retry(self, label: str,
                          attempt: Callable[[], Awaitable],
                          sleep: Optional[Callable[[float],
                                                   Awaitable]] = None):
        """Run ``attempt`` under the bounded backoff ladder.

        Retries :class:`ServiceOverloadError` and
        :class:`TransientShardError` only — data-integrity refusals
        are never retried (a refusal is an answer, not a fault).
        ``sleep`` is injectable so tests drive a seeded fake clock.
        """
        sleep = sleep if sleep is not None else asyncio.sleep
        delays = self.backoff_delays()
        last: Optional[Exception] = None
        for index in range(len(delays) + 1):
            try:
                return await attempt()
            except (ServiceOverloadError, TransientShardError) as exc:
                last = exc
                obs_metrics.counter(
                    f"service_{label}_retries_total").inc()
                if index < len(delays):
                    await sleep(delays[index])
        obs_metrics.counter(
            f"service_{label}_retries_exhausted_total").inc()
        assert last is not None
        raise last

    async def ingest_with_retry(
            self, tenant: str, video: VideoSequence,
            sleep: Optional[Callable[[float], Awaitable]] = None) -> str:
        """:meth:`ingest` under the bounded backoff ladder."""
        return await self._with_retry(
            "ingest", lambda: self.ingest(tenant, video), sleep)

    async def read_with_retry(
            self, tenant: str, object_id: str,
            reader: Optional[str] = None,
            rng: Optional[np.random.Generator] = None,
            sleep: Optional[Callable[[float], Awaitable]] = None
    ) -> ReadResult:
        """:meth:`read` under the bounded backoff ladder.

        Retries only operational faults (all replicas flaked); each
        retry re-reads with the same ``rng``, whose stream has
        advanced, so the chaos flake schedule decides whether the
        retry lands.
        """
        return await self._with_retry(
            "read",
            lambda: self.read(tenant, object_id, reader=reader, rng=rng),
            sleep)

    async def read_hedged(self, tenant: str, object_id: str,
                          reader: Optional[str] = None,
                          rng: Optional[np.random.Generator] = None,
                          hedge_after_s: float = 0.05,
                          hedge_rng: Optional[np.random.Generator] = None
                          ) -> ReadResult:
        """Read with a hedged secondary attempt after a deadline.

        If the primary read has not completed within ``hedge_after_s``
        a second, independent read is launched (seeded by
        ``hedge_rng`` so the hedge's error draws replay) and the first
        to finish wins. The loser keeps running on the executor — a
        shard read cannot be revoked — but its result is discarded.
        """
        primary = asyncio.ensure_future(
            self.read(tenant, object_id, reader=reader, rng=rng))
        try:
            return await asyncio.wait_for(asyncio.shield(primary),
                                          timeout=hedge_after_s)
        except asyncio.TimeoutError:
            pass
        obs_metrics.counter("service_hedged_reads_total").inc()
        hedge = asyncio.ensure_future(
            self.read(tenant, object_id, reader=reader, rng=hedge_rng))
        done, pending = await asyncio.wait(
            {primary, hedge}, return_when=asyncio.FIRST_COMPLETED)
        winner = primary if primary in done else hedge
        for task in pending:
            task.cancel()
        return await winner

    # -- repair -----------------------------------------------------------

    async def repair_pass(self, limit: Optional[int] = None,
                          scan: bool = True) -> RepairPassReport:
        """Run one repair-daemon iteration off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(run_repair_pass, self.store, limit=limit,
                          scan=scan))

    async def _repair_loop(self) -> None:
        """The background repair daemon: one pass per interval."""
        while True:
            await asyncio.sleep(self.repair_interval_s)
            await self.repair_pass()

    # -- worker -----------------------------------------------------------

    async def _ingest_worker(self) -> None:
        """Drain the queue forever, encoding in tenant-grouped batches."""
        loop = asyncio.get_running_loop()
        while True:
            batch: List[_QueueItem] = [await self._queue.get()]
            while (len(batch) < self.ingest_batch
                   and not self._queue.empty()):
                batch.append(self._queue.get_nowait())
            obs_metrics.gauge("service_queue_depth").set(
                self._queue.qsize())
            by_tenant: dict = {}
            for item in batch:
                by_tenant.setdefault(item[0], []).append(item)
            for tenant, items in by_tenant.items():
                clips = [video for _, video, _ in items]
                try:
                    ids = await loop.run_in_executor(
                        None, self.store.put_many, tenant, clips)
                    for (_, _, future), object_id in zip(items, ids):
                        if not future.cancelled():
                            future.set_result(object_id)
                except Exception as exc:  # propagate to every waiter
                    for _, _, future in items:
                        if not future.cancelled():
                            future.set_exception(exc)
            for _ in batch:
                self._queue.task_done()
