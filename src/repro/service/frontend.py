"""Async front-end: a bounded ingest queue in front of the store.

:class:`ServiceFrontend` is the service's admission layer. Ingests do
not encode inline — they park the clip on a bounded queue and await a
future; a single worker coroutine drains the queue in batches of up to
``ingest_batch`` clips and hands each batch (grouped by tenant) to
:meth:`~repro.service.store.VideoObjectStore.put_many`, which routes
same-geometry clips through the vectorized encode kernel. Reads bypass
the queue entirely and run on the default executor so they stay
responsive while an encode batch is in flight.

Backpressure is explicit: when the queue is full the front-end sheds
the ingest with :class:`~repro.errors.ServiceOverloadError` instead of
buffering without bound — the ``queue overflow`` failure mode in
docs/SERVICE.md. Queue depth is exported continuously as the
``service_queue_depth`` gauge.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ServiceOverloadError
from ..obs import metrics as obs_metrics
from ..video.frame import VideoSequence
from . import config as service_config
from .store import FrameReadResult, ReadResult, VideoObjectStore

#: One queued ingest: (tenant, clip, future resolving to the object id).
_QueueItem = Tuple[str, VideoSequence, "asyncio.Future"]


class ServiceFrontend:
    """Bounded-queue async facade over a :class:`VideoObjectStore`."""

    def __init__(self, store: Optional[VideoObjectStore] = None,
                 queue_depth: Optional[int] = None,
                 ingest_batch: Optional[int] = None) -> None:
        # ``store or ...`` would discard an *empty* store (len() == 0).
        self.store = store if store is not None else VideoObjectStore()
        self.queue_depth = service_config.resolve_queue_depth(queue_depth)
        self.ingest_batch = service_config.resolve_ingest_batch(
            ingest_batch)
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and launch the ingest worker."""
        if self._worker is not None:
            return
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._worker = asyncio.create_task(self._ingest_worker())

    async def stop(self) -> None:
        """Drain every queued ingest, then retire the worker."""
        if self._worker is None:
            return
        await self._queue.join()
        self._worker.cancel()
        try:
            await self._worker
        except asyncio.CancelledError:
            pass
        self._worker = None
        self._queue = None
        obs_metrics.gauge("service_queue_depth").set(0)

    # -- client surface ---------------------------------------------------

    async def ingest(self, tenant: str, video: VideoSequence) -> str:
        """Queue one clip for encoding; resolves to its object id.

        Raises :class:`ServiceOverloadError` immediately when the
        queue is full — callers retry with backoff or drop the clip.
        """
        if self._queue is None:
            raise ServiceOverloadError(
                "front-end is not started; call start() first")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        try:
            self._queue.put_nowait((tenant, video, future))
        except asyncio.QueueFull:
            obs_metrics.counter("service_overload_total").inc()
            self.store.audit.record("overload", tenant,
                                    detail=f"queue full "
                                           f"({self.queue_depth})")
            raise ServiceOverloadError(
                f"ingest queue full ({self.queue_depth} clips); "
                f"shedding the request") from None
        obs_metrics.gauge("service_queue_depth").set(
            self._queue.qsize())
        return await future

    async def read(self, tenant: str, object_id: str,
                   reader: Optional[str] = None,
                   rng: Optional[np.random.Generator] = None
                   ) -> ReadResult:
        """Serve one read off the event loop (default executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.store.get, tenant, object_id,
                          reader=reader, rng=rng))

    async def read_frame(self, tenant: str, object_id: str,
                         display: int, reader: Optional[str] = None,
                         rng: Optional[np.random.Generator] = None
                         ) -> FrameReadResult:
        """Serve one random-access frame off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.store.get_frame, tenant, object_id,
                          display, reader=reader, rng=rng))

    # -- worker -----------------------------------------------------------

    async def _ingest_worker(self) -> None:
        """Drain the queue forever, encoding in tenant-grouped batches."""
        loop = asyncio.get_running_loop()
        while True:
            batch: List[_QueueItem] = [await self._queue.get()]
            while (len(batch) < self.ingest_batch
                   and not self._queue.empty()):
                batch.append(self._queue.get_nowait())
            obs_metrics.gauge("service_queue_depth").set(
                self._queue.qsize())
            by_tenant: dict = {}
            for item in batch:
                by_tenant.setdefault(item[0], []).append(item)
            for tenant, items in by_tenant.items():
                clips = [video for _, video, _ in items]
                try:
                    ids = await loop.run_in_executor(
                        None, self.store.put_many, tenant, clips)
                    for (_, _, future), object_id in zip(items, ids):
                        if not future.cancelled():
                            future.set_result(object_id)
                except Exception as exc:  # propagate to every waiter
                    for _, _, future in items:
                        if not future.cancelled():
                            future.set_exception(exc)
            for _ in batch:
                self._queue.task_done()
