"""Read-repair queue and the deterministic background repair pass.

Self-healing has two halves. The **queue** (:class:`RepairQueue`) is
fed by the read path: any read that survived only via a secondary
replica, saw ``corrected``/``concealed`` damage, or was refused
outright enqueues its object for repair (deduped, FIFO). The **pass**
(:func:`run_repair_pass`) is the daemon body: it first scans the
store's placement for violations — a replica chain touching a
quarantined shard, a missing copy, fewer copies than
``REPRO_SERVICE_REPLICAS`` healthy shards could hold — then drains up
to ``REPRO_REPAIR_BATCH`` tickets, stream by stream:

1. compute the *wanted* placement: the first R **healthy** shards
   clockwise from the stream key (quarantined shards are skipped, so
   quarantine stops being observational and becomes actionable);
2. pick a **verified source**: a replica whose at-rest blob hashes to
   the write-time ``stream_sha`` — repair never propagates tampered or
   rotten bytes (at-rest blobs are pristine in this simulation; damage
   is a read-time phenomenon, which is exactly why the at-rest copy is
   the right donor);
3. rewrite every wanted target from the source. A rewrite programs
   fresh cells: it is charged to the cell-write budget exactly like a
   scrub (``service_repair_cell_writes_total``) and **resets the key's
   retention age** on that shard, so the next read sees a fresh write;
4. drain strays: copies parked on shards outside the wanted set
   (quarantined donors included) are deleted once the wanted set is
   whole;
5. update the record's replica chain + primary and invalidate the
   object's cached GOPs so a post-repair seek re-fetches clean data.

Everything is deterministic: tickets drain in FIFO order, streams
repair in sorted-name order, and no step consults a clock or an
unseeded RNG — a repaired store's state is a pure function of the
operation history, which is what lets the scenario matrix replay
repair runs bit-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..errors import ServiceError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..storage.ecc import scheme_by_name
from . import config as service_config


@dataclass(frozen=True)
class RepairTicket:
    """One queued repair request for a placed object."""

    tenant: str
    object_id: str
    #: Why it was enqueued: ``read_repair`` (the read path saw damage
    #: or escalated to a secondary) or ``placement`` (the scan found a
    #: replica-chain violation: quarantined/missing/under-replicated).
    reason: str


class RepairQueue:
    """Deduped FIFO of objects awaiting repair.

    An object already queued is not queued again until its ticket is
    popped — a hot damaged object read in a tight loop costs one
    repair, not one per read.
    """

    def __init__(self) -> None:
        self._tickets: Deque[RepairTicket] = deque()
        self._pending: Set[Tuple[str, str]] = set()

    def __len__(self) -> int:
        return len(self._tickets)

    def enqueue(self, tenant: str, object_id: str,
                reason: str = "read_repair") -> bool:
        """Queue ``(tenant, object_id)``; False if already pending."""
        key = (tenant, object_id)
        if key in self._pending:
            return False
        self._pending.add(key)
        self._tickets.append(
            RepairTicket(tenant=tenant, object_id=object_id,
                         reason=reason))
        obs_metrics.counter("service_repair_enqueued_total").inc()
        obs_metrics.gauge("service_repair_backlog").set(
            len(self._tickets))
        return True

    def pop(self) -> Optional[RepairTicket]:
        """The oldest ticket, or ``None`` when the queue is empty."""
        if not self._tickets:
            return None
        ticket = self._tickets.popleft()
        self._pending.discard((ticket.tenant, ticket.object_id))
        obs_metrics.gauge("service_repair_backlog").set(
            len(self._tickets))
        return ticket

    def backlog(self) -> int:
        """Tickets currently waiting."""
        return len(self._tickets)


@dataclass
class RepairPassReport:
    """Accounting of one :func:`run_repair_pass` invocation."""

    scanned_objects: int = 0
    scan_enqueued: int = 0
    tickets_drained: int = 0
    objects_repaired: int = 0
    streams_rewritten: int = 0
    cell_writes: int = 0
    strays_deleted: int = 0
    #: Streams no verified source could be found for (left untouched).
    unrepairable_streams: int = 0
    backlog: int = 0
    #: Shard ids that lost at least one blob to the drain step.
    drained_shards: Tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable key order for digests)."""
        return {
            "scanned_objects": self.scanned_objects,
            "scan_enqueued": self.scan_enqueued,
            "tickets_drained": self.tickets_drained,
            "objects_repaired": self.objects_repaired,
            "streams_rewritten": self.streams_rewritten,
            "cell_writes": self.cell_writes,
            "strays_deleted": self.strays_deleted,
            "unrepairable_streams": self.unrepairable_streams,
            "backlog": self.backlog,
            "drained_shards": list(self.drained_shards),
        }


def _wanted_placement(store, key: str) -> List[str]:
    """Ids of the first R healthy shards for ``key`` (ring order)."""
    return [shard.shard_id
            for shard in store.pool.place_n(key, store.replicas,
                                            healthy_only=True)]


def _chain_violated(store, record, name: str, key: str) -> bool:
    """True when ``name``'s replica chain needs a placement repair.

    A chain is violated when a copy is missing or when the chain
    differs from the *achievable* wanted placement. Comparing against
    the wanted set (not raw shard health) is what makes the scan
    convergent: when every shard is quarantined the healthy-only walk
    falls back to the unfiltered ring, wanted equals the chain, and no
    un-actionable ticket is enqueued forever.
    """
    chain = record.replicas.get(name) or (record.placement[name],)
    held = [sid for sid in chain if store.pool.shard(sid).has(key)]
    if len(held) < len(chain):
        return True
    return set(chain) != set(_wanted_placement(store, key))


def scan_placement(store) -> Tuple[int, int]:
    """Enqueue every object whose replica chain is violated.

    Returns ``(objects scanned, objects enqueued)``. This is the
    daemon's discovery half: it turns shard-health state (quarantine,
    drained blobs, pool regrowth) into repair work even for objects
    nobody is reading.
    """
    scanned = enqueued = 0
    for record in store.objects():
        scanned += 1
        from .store import stream_key
        for name in sorted(record.protected.streams):
            key = stream_key(record.tenant, record.object_id, name)
            if _chain_violated(store, record, name, key):
                if store.repair.enqueue(record.tenant, record.object_id,
                                        reason="placement"):
                    enqueued += 1
                break
    return scanned, enqueued


def _repair_stream(store, record, name: str,
                   report: RepairPassReport) -> bool:
    """Repair one stream's replica chain; True if anything changed."""
    from .store import stream_key
    key = stream_key(record.tenant, record.object_id, name)
    scheme = scheme_by_name(name)
    want = _wanted_placement(store, key)
    chain = list(record.replicas.get(name)
                 or (record.placement[name],))
    # A verified donor: any shard whose at-rest blob still hashes to
    # the write-time record. Walk the recorded chain first, then the
    # whole pool (a drained-then-regrown pool may hold strays).
    source = None
    candidates = chain + [sid for sid in sorted(store.pool.shards)
                          if sid not in chain]
    for sid in candidates:
        shard = store.pool.shard(sid)
        if shard.has(key) and shard.blob_sha(key) == \
                record.stream_sha[name]:
            source = shard
            break
    if source is None:
        report.unrepairable_streams += 1
        obs_metrics.counter("service_repair_unrepairable_total").inc()
        return False
    blob = source.blobs[key]
    changed = False
    for sid in want:
        target = store.pool.shard(sid)
        stale = (target.has(key)
                 and target.blob_sha(key) != record.stream_sha[name])
        if not target.has(key) or stale:
            report.cell_writes += target.rewrite(key, blob, scheme)
            report.streams_rewritten += 1
            changed = True
        elif sid in chain:
            # The copy is present and verified but was read as damaged
            # (read-repair) or sits beside a violation: refresh its
            # cells so its age resets like a scrub.
            report.cell_writes += target.rewrite(key, blob, scheme)
            report.streams_rewritten += 1
            changed = True
    drained = []
    for sid in sorted(store.pool.shards):
        if sid not in want and store.pool.shard(sid).has(key):
            store.pool.shard(sid).delete(key)
            report.strays_deleted += 1
            drained.append(sid)
            changed = True
    if drained:
        report.drained_shards = tuple(
            sorted(set(report.drained_shards) | set(drained)))
    if tuple(want) != tuple(chain) or record.placement[name] != want[0]:
        changed = True
    record.replicas[name] = tuple(want)
    record.placement[name] = want[0]
    return changed


def run_repair_pass(store, limit: Optional[int] = None,
                    scan: bool = True) -> RepairPassReport:
    """One deterministic repair-daemon iteration over ``store``.

    ``limit`` bounds the tickets drained (``REPRO_REPAIR_BATCH``);
    ``scan=False`` skips placement discovery and drains only what the
    read path already enqueued. Returns a :class:`RepairPassReport`.
    """
    limit = service_config.resolve_repair_batch(limit)
    report = RepairPassReport()
    with obs_trace.span("service.repair_pass", limit=limit, scan=scan):
        if scan:
            report.scanned_objects, report.scan_enqueued = \
                scan_placement(store)
        for _ in range(limit):
            ticket = store.repair.pop()
            if ticket is None:
                break
            report.tickets_drained += 1
            try:
                record = store.record(ticket.tenant, ticket.object_id)
            except ServiceError:
                continue  # retired between enqueue and drain
            changed = False
            for name in sorted(record.protected.streams):
                if _repair_stream(store, record, name, report):
                    changed = True
            if changed:
                report.objects_repaired += 1
                store.gop_cache.invalidate(tenant=ticket.tenant,
                                           object_id=ticket.object_id)
                store.audit.record(
                    "repair", ticket.tenant, ticket.object_id,
                    detail=f"reason={ticket.reason} "
                           f"streams={len(record.protected.streams)}")
                obs_metrics.counter(
                    "service_repair_objects_total").inc()
    report.backlog = store.repair.backlog()
    obs_metrics.counter("service_repair_passes_total").inc()
    obs_metrics.gauge("service_repair_backlog").set(report.backlog)
    return report


def replication_health(store) -> Dict[str, int]:
    """Replica-chain census: how healed the store currently is."""
    from .store import stream_key
    full = under = 0
    for record in store.objects():
        ok = True
        for name in sorted(record.protected.streams):
            key = stream_key(record.tenant, record.object_id, name)
            chain = record.replicas.get(name) \
                or (record.placement[name],)
            held = [sid for sid in chain
                    if store.pool.shard(sid).has(key)]
            if (len(held) < len(chain)
                    or set(chain) != set(_wanted_placement(store, key))):
                ok = False
                break
        full += ok
        under += not ok
    return {"objects": len(store.objects()), "fully_replicated": full,
            "under_replicated": under,
            "backlog": store.repair.backlog()}
