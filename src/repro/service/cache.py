"""Decoded-GOP LRU cache for the random-access read path.

``get_frame`` decodes a whole display GOP per miss (partial decode
already paid for the anchor chain, and serving workloads scrub
neighbouring frames), so the natural cache unit is the decoded GOP:
``(tenant, object_id, anchor_display) -> {display: frame}`` plus the
read classification the GOP was served under. A hit replays the cached
outcome — including a refusal — which keeps repeated seeks into the
same GOP consistent within one cache generation.

The cache is deliberately tiny and deterministic: an ``OrderedDict``
LRU with a capacity measured in GOPs (``REPRO_SEEK_CACHE``), hit/miss/
eviction counters on the ``obs`` metrics registry, and an explicit
``invalidate`` for tests and operators. Capacity 0 disables caching
without disabling the partial-read path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

#: Cache key: (tenant, object_id, anchor display index).
GopKey = Tuple[str, str, int]


#: Outcomes a cache must not pin at full weight: the data improves the
#: moment the repair daemon rewrites the object, so damaged GOPs are
#: admitted evict-first with a hit TTL instead of LRU-pinned.
DAMAGED_OUTCOMES = ("concealed", "refused")


@dataclass
class CachedGop:
    """One decoded display-GOP and the outcome it was served under."""

    anchor_display: int
    #: Display index -> reconstructed frame ``(H, W) uint8``.
    frames: Dict[int, np.ndarray]
    outcome: str
    psnr_db: Optional[float] = None
    refusal_reason: str = ""
    concealed_streams: Tuple[str, ...] = ()
    #: Hits this entry may still serve; ``None`` = no TTL (clean
    #: entries live by LRU alone). Set by the cache on admission.
    remaining_ttl: Optional[int] = None


@dataclass
class GopCache:
    """LRU over decoded GOPs with observable hit/miss accounting."""

    capacity: int = 16
    #: Hits a damaged (concealed/refused) admission may serve before it
    #: expires and forces a re-fetch (``REPRO_REPAIR_CACHE_TTL``).
    concealed_ttl: int = 1
    _entries: "OrderedDict[GopKey, CachedGop]" = field(
        default_factory=OrderedDict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: GopKey) -> Optional[CachedGop]:
        """The cached GOP for ``key``, refreshing its recency.

        Damaged admissions carry a hit TTL: once it is spent the entry
        expires (counted as a miss), so the caller re-fetches from the
        shards — where the repair daemon may since have rewritten the
        object clean. Serving a damaged hit does *not* refresh its
        recency; it stays first in line for eviction.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs_metrics.counter("service_gop_cache_misses_total").inc()
            return None
        if entry.remaining_ttl is not None:
            if entry.remaining_ttl <= 0:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                obs_metrics.counter(
                    "service_gop_cache_expired_total").inc()
                obs_metrics.counter(
                    "service_gop_cache_misses_total").inc()
                return None
            entry.remaining_ttl -= 1
            self.hits += 1
            obs_metrics.counter("service_gop_cache_hits_total").inc()
            return entry
        self._entries.move_to_end(key)
        self.hits += 1
        obs_metrics.counter("service_gop_cache_hits_total").inc()
        return entry

    def put(self, key: GopKey, entry: CachedGop) -> None:
        """Insert (or refresh) ``key``, evicting the LRU past capacity.

        Clean/corrected GOPs enter at the MRU end as before. Damaged
        GOPs are admitted *evict-first* (LRU end) with
        ``concealed_ttl`` hits to give — they are placeholders until
        repair, not working-set members.
        """
        if self.capacity <= 0:
            return
        damaged = entry.outcome in DAMAGED_OUTCOMES
        if damaged:
            entry.remaining_ttl = self.concealed_ttl
            obs_metrics.counter(
                "service_gop_cache_damaged_admits_total").inc()
        self._entries[key] = entry
        self._entries.move_to_end(key, last=not damaged)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs_metrics.counter(
                "service_gop_cache_evictions_total").inc()

    def invalidate(self, tenant: Optional[str] = None,
                   object_id: Optional[str] = None) -> int:
        """Drop entries matching the given scope; returns the count.

        With no arguments the whole cache is cleared; ``tenant`` alone
        scopes to that tenant, ``object_id`` narrows to one object.
        """
        doomed = [key for key in self._entries
                  if (tenant is None or key[0] == tenant)
                  and (object_id is None or key[1] == object_id)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> Dict[str, int]:
        """Counters snapshot for exhibits and the CLI."""
        return {"size": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations}
