"""Deterministic load generator for the serving layer.

``repro loadgen`` drives a :class:`~repro.service.frontend.
ServiceFrontend` with N concurrent clients issuing a seeded mix of
ingests and reads, then walks the shard pool through a retention-age
grid to trace the degradation curve. Two runs with the same arguments
must report the **same run digest**: the digest covers only the
deterministic facts of each planned operation (kind, object id,
outcome, rounded PSNR, error-block counts) — never latencies, audit
ordering, or shard health counters, which legitimately vary with
thread scheduling.

How determinism survives concurrency:

* the whole op plan (kinds, clip seeds, read targets, per-op device
  seeds) is fixed up front from the run seed via ``SeedSequence`` —
  client coroutines only *execute* the plan;
* every read draws its device errors from its own pre-spawned RNG, so
  interleaving cannot reshuffle the error patterns;
* each read targets an ingest planned *earlier* and awaits that
  ingest's future, so it always observes the object as placed;
* the ingest queue is sized to the whole plan, so overload shedding
  (tested separately) never races into the digest.

The degradation phase re-reads sample objects with every shard pinned
to each grid age, next to a **raw baseline**: the same ciphertext read
back with no ECC at that age. The exhibit's claim is the contrast —
at ages where the raw read comes back corrupted, the service still
serves every read clean, corrected, or concealed, and never silently
wrong.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codec.config import EncoderConfig
from ..obs import trace as obs_trace
from ..storage.device import ApproximateDevice
from ..storage.ecc import NONE_SCHEME
from ..video.synthesis import SceneConfig, synthesize_scene
from .frontend import ServiceFrontend
from .keyring import Keyring
from .repair import run_repair_pass
from .shards import ShardPool
from .store import VideoObjectStore, stream_key

#: Default retention-age grid (days) for the degradation phase:
#: nominal, 10 years, 100 years, and deep overhang past the paper's
#: horizon — the last two are where raw reads visibly rot.
DEFAULT_T_GRID: Tuple[Optional[float], ...] = (None, 3650.0, 36500.0,
                                               100000.0)

#: Clip geometry for generated load: small enough to keep the frozen
#: CI recipe fast, uniform so ingest batches ride the vectorized
#: encode kernel.
CLIP_WIDTH, CLIP_HEIGHT, CLIP_FRAMES = 48, 32, 4


@dataclass(frozen=True)
class PlannedOp:
    """One pre-planned client operation."""

    index: int
    client: int
    kind: str  # "ingest" | "read"
    tenant: str
    #: Ingest: the clip's scene seed. Read: unused.
    clip_seed: int = 0
    #: Read: the ingest ordinal whose object this read targets.
    target: int = -1
    #: Entropy for this op's device RNG (reads only).
    op_entropy: Tuple[int, ...] = ()


@dataclass
class LoadgenReport:
    """Everything one loadgen run measured."""

    seed: int
    clients: int
    ops: int
    read_fraction: float
    run_digest: str = ""
    ingest_count: int = 0
    read_count: int = 0
    elapsed_s: float = 0.0
    ingest_clips_per_second: float = 0.0
    read_p50_ms: float = 0.0
    read_p99_ms: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    degradation: List[dict] = field(default_factory=list)
    #: Post-repair re-reads per grid age (only when ``repair=True``).
    degradation_repair: List[dict] = field(default_factory=list)
    #: One :meth:`RepairPassReport.to_dict` per grid age repaired.
    repair_passes: List[dict] = field(default_factory=list)
    replicas: int = 1
    repair_enabled: bool = False
    shard_health: List[dict] = field(default_factory=list)
    audit_events: int = 0

    def to_dict(self) -> dict:
        """The report as plain JSON-serializable data."""
        return {
            "seed": self.seed, "clients": self.clients, "ops": self.ops,
            "read_fraction": self.read_fraction,
            "run_digest": self.run_digest,
            "ingest_count": self.ingest_count,
            "read_count": self.read_count,
            "elapsed_s": round(self.elapsed_s, 3),
            "ingest_clips_per_second": round(
                self.ingest_clips_per_second, 3),
            "read_p50_ms": round(self.read_p50_ms, 3),
            "read_p99_ms": round(self.read_p99_ms, 3),
            "outcomes": dict(sorted(self.outcomes.items())),
            "degradation": self.degradation,
            "degradation_repair": self.degradation_repair,
            "repair_passes": self.repair_passes,
            "replicas": self.replicas,
            "repair_enabled": self.repair_enabled,
            "shard_health": self.shard_health,
            "audit_events": self.audit_events,
        }

    def refusal_rate(self, phase: str = "degradation") -> float:
        """Fraction of the phase's sample reads that were refused."""
        points = (self.degradation_repair
                  if phase == "degradation_repair" else self.degradation)
        served = refused = 0
        for point in points:
            for outcome, count in point["outcomes"].items():
                served += count
                refused += count if outcome == "refused" else 0
        return refused / served if served else 0.0


def build_plan(seed: int, clients: int, ops: int,
               read_fraction: float) -> List[PlannedOp]:
    """The deterministic op plan for a run.

    Ops are dealt to clients round-robin. An op is a read with
    probability ``read_fraction`` provided at least one ingest precedes
    it in plan order (op 0 is always an ingest); each read targets a
    uniformly drawn earlier ingest. Tenants alternate between two
    names so the keyring path is always exercised.
    """
    if clients < 1 or ops < 1:
        raise ValueError("loadgen needs >= 1 client and >= 1 op")
    planner = np.random.default_rng(seed)
    entropy = np.random.SeedSequence(seed).spawn(ops)
    plan: List[PlannedOp] = []
    ingests: List[int] = []
    for index in range(ops):
        client = index % clients
        is_read = bool(ingests) and planner.random() < read_fraction
        if is_read:
            target = int(ingests[int(planner.integers(len(ingests)))])
            tenant = plan[target].tenant
            plan.append(PlannedOp(
                index=index, client=client, kind="read", tenant=tenant,
                target=target,
                op_entropy=tuple(
                    int(word)
                    for word in entropy[index].generate_state(4))))
        else:
            tenant = f"tenant-{len(ingests) % 2}"
            plan.append(PlannedOp(
                index=index, client=client, kind="ingest",
                tenant=tenant,
                clip_seed=int(planner.integers(1 << 31))))
            ingests.append(index)
    return plan


def _clip(clip_seed: int):
    """The deterministic synthetic clip for one planned ingest."""
    return synthesize_scene(SceneConfig(
        width=CLIP_WIDTH, height=CLIP_HEIGHT, num_frames=CLIP_FRAMES,
        seed=clip_seed))


def run_loadgen(clients: int = 4, ops: int = 12, seed: int = 0,
                read_fraction: float = 0.5,
                shards: Optional[int] = None,
                read_retries: Optional[int] = None,
                t_days: Optional[float] = None,
                t_grid: Sequence[Optional[float]] = DEFAULT_T_GRID,
                degradation_samples: int = 2,
                ingest_batch: Optional[int] = None,
                config: Optional[EncoderConfig] = None,
                replicas: Optional[int] = None,
                repair: bool = False) -> LoadgenReport:
    """Run one seeded load, then the degradation sweep.

    ``t_days`` ages the shard pool for the mixed phase (``None`` =
    nominal); ``t_grid`` is the degradation sweep, skipped when empty.
    The ingest queue is sized to the whole plan so backpressure never
    sheds a planned op (overload behaviour has its own unit tests).
    ``replicas`` sets the copies written per stream; ``repair`` runs a
    repair pass after each degradation grid point's sample reads and
    re-reads the samples (the ``degradation_repair`` phase) — same
    seeds, so an R=1 run and an R=2+repair run contrast cleanly.
    """
    plan = build_plan(seed, clients, ops, read_fraction)
    pool = ShardPool(count=shards, t_days=t_days,
                     read_retries=read_retries)
    store = VideoObjectStore(pool=pool, keyring=Keyring(seed=seed),
                             config=config, replicas=replicas)
    frontend = ServiceFrontend(store, queue_depth=ops + 1,
                               ingest_batch=ingest_batch)
    report = LoadgenReport(seed=seed, clients=clients, ops=ops,
                           read_fraction=read_fraction,
                           replicas=store.replicas,
                           repair_enabled=repair)
    records: List[dict] = []
    read_ms: List[float] = []
    object_ids: Dict[int, str] = {}

    async def _run() -> None:
        with obs_trace.span("service.loadgen", clients=clients,
                            ops=ops, seed=seed):
            await frontend.start()
            loop = asyncio.get_running_loop()
            placed: Dict[int, asyncio.Future] = {
                op.index: loop.create_future() for op in plan
                if op.kind == "ingest"}

            async def run_client(client_id: int) -> None:
                for op in plan:
                    if op.client != client_id:
                        continue
                    if op.kind == "ingest":
                        object_id = await frontend.ingest(
                            op.tenant, _clip(op.clip_seed))
                        object_ids[op.index] = object_id
                        placed[op.index].set_result(object_id)
                        records.append({
                            "op": op.index, "kind": "ingest",
                            "object_id": object_id})
                    else:
                        object_id = await placed[op.target]
                        rng = np.random.default_rng(
                            np.random.SeedSequence(
                                entropy=op.op_entropy))
                        start = time.perf_counter()
                        result = await frontend.read(
                            op.tenant, object_id, rng=rng)
                        read_ms.append(
                            (time.perf_counter() - start) * 1e3)
                        records.append({
                            "op": op.index, "kind": "read",
                            "object_id": object_id,
                            "outcome": result.outcome,
                            "psnr": (None if result.psnr_db is None
                                     else round(result.psnr_db, 2)),
                            "failed_blocks": result.failed_blocks,
                            "retry_successes": result.retry_successes,
                        })
            started = time.perf_counter()
            await asyncio.gather(*(run_client(c)
                                   for c in range(clients)))
            await frontend.stop()
            report.elapsed_s = time.perf_counter() - started

    asyncio.run(_run())

    report.ingest_count = sum(1 for r in records if r["kind"] == "ingest")
    report.read_count = len(read_ms)
    if report.elapsed_s > 0:
        report.ingest_clips_per_second = (report.ingest_count
                                          / report.elapsed_s)
    if read_ms:
        report.read_p50_ms = float(np.percentile(read_ms, 50))
        report.read_p99_ms = float(np.percentile(read_ms, 99))
    for record in records:
        if record["kind"] == "read":
            outcome = record["outcome"]
            report.outcomes[outcome] = report.outcomes.get(outcome,
                                                           0) + 1

    records.extend(_degradation_sweep(
        store, pool, plan, object_ids, seed, t_grid,
        degradation_samples, report, repair=repair))

    records.sort(key=lambda r: (r.get("phase", ""), r["op"]))
    digest = hashlib.sha256()
    for record in records:
        digest.update(json.dumps(record, sort_keys=True).encode())
        digest.update(b"\n")
    report.run_digest = digest.hexdigest()
    report.shard_health = [
        {"shard": row[0], "health": row[1], "age": row[2]}
        for row in pool.health_rows()]
    report.audit_events = len(store.audit)
    return report


def _degradation_sweep(store: VideoObjectStore, pool: ShardPool,
                       plan: List[PlannedOp],
                       object_ids: Dict[int, str], seed: int,
                       t_grid: Sequence[Optional[float]],
                       samples: int, report: LoadgenReport,
                       repair: bool = False) -> List[dict]:
    """Re-read sample objects across the age grid, vs a raw baseline."""
    ingest_ordinals = sorted(object_ids)[:max(0, samples)]
    if not ingest_ordinals or not t_grid:
        return []
    per_age = (len(ingest_ordinals) + 1
               + (len(ingest_ordinals) if repair else 0))
    sweep_entropy = np.random.SeedSequence(
        [seed, 0xDECA7]).spawn(len(t_grid) * per_age)
    sweep_records: List[dict] = []
    draw = 0
    for t in t_grid:
        pool.set_age(t)
        point = {"t_days": t, "outcomes": {}, "psnr_db": [],
                 "raw_ok": True, "raw_flipped_bits": 0}
        for ordinal in ingest_ordinals:
            op = plan[ordinal]
            result = store.get(
                op.tenant, object_ids[ordinal],
                rng=np.random.default_rng(sweep_entropy[draw]))
            draw += 1
            point["outcomes"][result.outcome] = (
                point["outcomes"].get(result.outcome, 0) + 1)
            if result.psnr_db is not None:
                point["psnr_db"].append(round(result.psnr_db, 2))
            sweep_records.append({
                "phase": "degradation", "op": ordinal,
                "t_days": t, "outcome": result.outcome,
                "psnr": (None if result.psnr_db is None
                         else round(result.psnr_db, 2)),
                "failed_blocks": result.failed_blocks,
            })
        # Raw baseline: the first sample's biggest ciphertext stream
        # read back with no ECC at this age.
        op = plan[ingest_ordinals[0]]
        record = store.record(op.tenant, object_ids[ingest_ordinals[0]])
        name = max(record.stream_sha,
                   key=lambda n: len(record.protected.streams[n]))
        blob = pool.shard(record.placement[name]).blobs[
            stream_key(record.tenant, record.object_id, name)]
        device = ApproximateDevice(
            rng=np.random.default_rng(sweep_entropy[draw]))
        draw += 1
        _, raw_report = device.store_and_read(blob, NONE_SCHEME,
                                              t_days=t)
        point["raw_flipped_bits"] = raw_report.flipped_bits
        point["raw_ok"] = raw_report.flipped_bits == 0
        point["psnr_db"] = (round(float(np.mean(point["psnr_db"])), 2)
                            if point["psnr_db"] else None)
        report.degradation.append(point)
        if repair:
            # The sample reads above enqueued read-repair tickets for
            # anything damaged at this age; drain them (rewrites reset
            # the keys' retention age) and re-read the same samples.
            pass_report = run_repair_pass(store)
            report.repair_passes.append(
                {"t_days": t, **pass_report.to_dict()})
            healed = {"t_days": t, "outcomes": {}, "psnr_db": []}
            for ordinal in ingest_ordinals:
                op = plan[ordinal]
                result = store.get(
                    op.tenant, object_ids[ordinal],
                    rng=np.random.default_rng(sweep_entropy[draw]))
                draw += 1
                healed["outcomes"][result.outcome] = (
                    healed["outcomes"].get(result.outcome, 0) + 1)
                if result.psnr_db is not None:
                    healed["psnr_db"].append(round(result.psnr_db, 2))
                sweep_records.append({
                    "phase": "degradation_repair", "op": ordinal,
                    "t_days": t, "outcome": result.outcome,
                    "psnr": (None if result.psnr_db is None
                             else round(result.psnr_db, 2)),
                    "failed_blocks": result.failed_blocks,
                })
            healed["psnr_db"] = (
                round(float(np.mean(healed["psnr_db"])), 2)
                if healed["psnr_db"] else None)
            report.degradation_repair.append(healed)
    pool.set_age(None)
    return sweep_records


def run_durability_contrast(clients: int = 4, ops: int = 12,
                            seed: int = 0, read_fraction: float = 0.5,
                            shards: Optional[int] = None,
                            read_retries: Optional[int] = None,
                            t_grid: Sequence[Optional[float]]
                            = DEFAULT_T_GRID,
                            degradation_samples: int = 2,
                            config: Optional[EncoderConfig] = None
                            ) -> dict:
    """The durability exhibit: R=1 bare vs R=2 + repair, same seeds.

    Runs the identical seeded load twice — once single-copy with no
    repair, once with two replicas and a repair pass per degradation
    age — and reports the refusal-rate and PSNR contrast. Both arms
    draw their op plans and device errors from the same seed, so every
    difference is attributable to replication + repair, and the
    combined ``contrast_digest`` replays bit-identically.
    """
    kwargs = dict(clients=clients, ops=ops, seed=seed,
                  read_fraction=read_fraction, shards=shards,
                  read_retries=read_retries, t_grid=t_grid,
                  degradation_samples=degradation_samples,
                  config=config)
    baseline = run_loadgen(replicas=1, repair=False, **kwargs)
    healed = run_loadgen(replicas=2, repair=True, **kwargs)
    deltas = []
    for base_point, healed_point in zip(baseline.degradation,
                                        healed.degradation_repair):
        if (base_point["psnr_db"] is not None
                and healed_point["psnr_db"] is not None):
            deltas.append(round(
                healed_point["psnr_db"] - base_point["psnr_db"], 2))
    digest = hashlib.sha256(
        f"{baseline.run_digest}|{healed.run_digest}".encode()
    ).hexdigest()[:32]
    return {
        "baseline": baseline.to_dict(),
        "healed": healed.to_dict(),
        "refusal_rate_baseline": round(baseline.refusal_rate(), 4),
        "refusal_rate_healed": round(
            healed.refusal_rate("degradation_repair"), 4),
        "psnr_delta_db": deltas,
        "mean_psnr_delta_db": (round(float(np.mean(deltas)), 2)
                               if deltas else None),
        "contrast_digest": digest,
    }
