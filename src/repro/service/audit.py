"""Append-only audit log for the serving layer.

Every externally visible action of the store — an ingest accepted, an
object placed, a read served (and *how*: clean, corrected, concealed,
refused), an access denial, a shard quarantine — lands here as one
:class:`AuditEvent`. The log is deliberately **wall-clock free**:
events carry a monotonic sequence number instead of a timestamp, so
two replays of the same seeded loadgen plan produce byte-identical
audit trails and the run digest can cover them.

The log is in-memory and bounded only by the run; operators export it
with :meth:`AuditLog.to_jsonl` (the ``audit`` command of ``repro
serve`` prints exactly that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..obs import metrics as obs_metrics


@dataclass(frozen=True)
class AuditEvent:
    """One audited action.

    ``detail`` is a short human-readable clause (outcome, shard id,
    denial reason) — structured enough to grep, loose enough to stay
    one line.
    """

    seq: int
    kind: str
    tenant: str
    object_id: str
    detail: str = ""

    def to_json(self) -> str:
        """The event as one compact JSON line."""
        return json.dumps(
            {"seq": self.seq, "kind": self.kind, "tenant": self.tenant,
             "object_id": self.object_id, "detail": self.detail},
            sort_keys=True)


class AuditLog:
    """An append-only, replay-stable event trail."""

    def __init__(self) -> None:
        self._events: List[AuditEvent] = []

    def record(self, kind: str, tenant: str, object_id: str = "",
               detail: str = "") -> AuditEvent:
        """Append one event and bump the matching audit counter."""
        event = AuditEvent(seq=len(self._events), kind=kind,
                           tenant=tenant, object_id=object_id,
                           detail=detail)
        self._events.append(event)
        obs_metrics.counter("service_audit_events_total").inc()
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> List[AuditEvent]:
        """All events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def to_jsonl(self) -> str:
        """The full trail as JSON lines (trailing newline included)."""
        if not self._events:
            return ""
        return "\n".join(e.to_json() for e in self._events) + "\n"
