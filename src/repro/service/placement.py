"""Consistent-hash placement of reliability streams onto shards.

The object store spreads every stored object's reliability streams
across a pool of :class:`~repro.service.shards.Shard`\\ s. Placement
must be:

* **deterministic** — the same key maps to the same shard in every
  process and every run (placement is part of the loadgen's replayable
  digest);
* **stable under growth** — adding a shard moves only ``~1/N`` of the
  keyspace (the classic consistent-hashing property), so an operator
  can widen the pool without a full reshuffle;
* **independent of wall clock and insertion order** — the ring is
  built purely from shard identifiers.

Each shard contributes ``vnodes`` virtual points to the ring, placed
at ``sha256(shard_id | replica)``; a key lands on the first point
clockwise from ``sha256(key)``. SHA-256 keeps the ring identical
across Python processes (``hash()`` is salted per process and is never
used here).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from ..errors import ServiceError

#: Default virtual nodes per shard: enough to keep the keyspace split
#: within a few percent of even for small pools without making ring
#: construction noticeable.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Ring coordinate of ``token``: the first 8 bytes of its SHA-256."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards.

    >>> ring = HashRing(["shard-0", "shard-1"])
    >>> ring.place("tenant-a/obj/BCH-6")  # doctest: +SKIP
    'shard-1'
    """

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_ids:
            raise ServiceError("a hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ServiceError(f"duplicate shard ids: {list(shard_ids)}")
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        for shard_id in shard_ids:
            for replica in range(self.vnodes):
                self._points.append(
                    (_point(f"{shard_id}|{replica}"), shard_id))
        self._points.sort()
        self._keys = [point for point, _ in self._points]
        self.shard_ids = tuple(shard_ids)

    def place(self, key: str) -> str:
        """The shard id owning ``key`` (first ring point clockwise)."""
        index = bisect.bisect_right(self._keys, _point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def place_n(self, key: str, r: int) -> Tuple[str, ...]:
        """The first ``r`` *distinct* shards clockwise from ``key``.

        This is the replica set: element 0 is the primary (identical
        to :meth:`place`), the rest are the successor shards walking
        the ring — so shrinking or growing ``r`` never moves the
        primary, and R=1 degenerates to the single-copy placement.
        ``r`` is clamped to the pool width (a 2-shard ring can hold at
        most 2 distinct replicas).
        """
        if r < 1:
            raise ServiceError(f"replica count must be >= 1, got {r}")
        want = min(int(r), len(self.shard_ids))
        start = bisect.bisect_right(self._keys, _point(key))
        chosen: List[str] = []
        seen = set()
        for step in range(len(self._points)):
            shard_id = self._points[(start + step) % len(self._points)][1]
            if shard_id in seen:
                continue
            seen.add(shard_id)
            chosen.append(shard_id)
            if len(chosen) == want:
                break
        return tuple(chosen)

    def placement(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: shard_id}`` for a batch of keys."""
        return {key: self.place(key) for key in keys}

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """``{shard_id: key count}`` — how evenly ``keys`` distribute."""
        counts = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.place(key)] += 1
        return counts
