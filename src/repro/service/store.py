"""The content-addressed object store over the shard pool.

This is the service's heart: :class:`VideoObjectStore` turns raw clips
into placed ciphertext and turns placed ciphertext back into decoded
video, with an explicit, audited answer for *how good* that video is.

Write path (:meth:`VideoObjectStore.put_many`): clips are batch-encoded
(grouped by geometry so the vectorized kernel applies), importance-
analyzed, partitioned into reliability streams, encrypted under the
owning tenant's CTR key, and placed stream-by-stream onto the shard
pool's consistent-hash ring. The object id is the SHA-256 of the
serialized container, so identical content dedupes within a tenant.
A SHA-256 of every ciphertext stream is recorded at write time — the
integrity reference the read path checks against.

Read path (:meth:`VideoObjectStore.get`) — the four-outcome ladder:

* ``clean`` — no retries burned, no uncorrectable damage. Bit flips
  inside weakly protected streams are *expected* here — they are the
  approximation contract the paper sells, and they show up as PSNR
  movement, not as a failure outcome;
* ``corrected`` — the device retry ladder re-read detected-
  uncorrectable blocks back to health (``retry_successes > 0``);
* ``concealed`` — blocks stayed uncorrectable, and their stream
  coordinates were projected through the positional cipher into frame
  damage for the concealing decoder (never entropy-decoding known
  garbage);
* ``refused`` — the service will not serve the bytes: the read-back
  hash mismatches the write-time record while the device *claims* a
  clean read (the signature of silent miscorrection or substrate rot),
  the exact-ECC decoder reported miscorrected blocks, or a
  precise-scheme stream carries uncorrectable damage.

Refusal is the invariant the loadgen's degradation exhibit leans on:
aged shards may force concealment, but never a silently wrong frame.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codec.batch import encode_batch_with_recon
from ..codec.config import EncoderConfig
from ..codec.decoder import Decoder, dependency_closure
from ..core.assignment import PAPER_TABLE1, ClassAssignment
from ..core.importance import compute_importance
from ..core.partition import (
    ProtectedVideo,
    map_stream_damage,
    merge_streams,
    partition_video,
    stream_ranges_for_frames,
)
from ..errors import ReadRefusedError, ServiceError, TransientShardError
from ..metrics.psnr import video_psnr
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..storage.device import StorageReport
from ..storage.ecc import scheme_by_name
from ..video.frame import VideoSequence
from . import config as service_config
from .audit import AuditLog
from .cache import CachedGop, GopCache
from .keyring import Keyring
from .repair import RepairQueue
from .shards import ShardPool

#: Read outcomes, from best to worst.
CLEAN = "clean"
CORRECTED = "corrected"
CONCEALED = "concealed"
REFUSED = "refused"


def object_id_for(serialized: bytes) -> str:
    """Content address of a serialized container: its SHA-256 hex."""
    return hashlib.sha256(serialized).hexdigest()


def stream_key(tenant: str, object_id: str, stream: str) -> str:
    """The placement-ring key of one stored reliability stream."""
    return f"{tenant}/{object_id}/{stream}"


@dataclass
class ObjectRecord:
    """Everything the store remembers about one placed object.

    The ``protected`` container (headers + pivot tables + clean
    plaintext streams) is the object's *precise* storage — the paper
    keeps it off the approximate device entirely — so holding it in the
    record is the simulation's equivalent of the precise partition.
    """

    object_id: str
    tenant: str
    protected: ProtectedVideo
    #: Error-free reconstruction ``(frames, H, W) uint8`` — the PSNR
    #: reference for every later read of this object.
    recon: np.ndarray
    #: Write-time SHA-256 hex of each ciphertext stream.
    stream_sha: Dict[str, str]
    #: Stream name -> *primary* shard id (the first replica); kept as
    #: a plain map so single-copy callers and exhibits keep working.
    placement: Dict[str, str]
    frames: int = 0
    #: Stream name -> full replica chain in ring order (element 0 is
    #: the primary). Updated by the repair daemon as shards drain.
    replicas: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def replica_chain(self, name: str) -> Tuple[str, ...]:
        """The replica shards of stream ``name``, primary first."""
        return self.replicas.get(name) or (self.placement[name],)

    def recon_sequence(self) -> VideoSequence:
        """The reconstruction as a :class:`VideoSequence`."""
        return VideoSequence(frames=list(self.recon))


@dataclass
class ReadResult:
    """One served read, classified.

    ``video`` is ``None`` exactly when ``outcome == "refused"`` — a
    refused read never hands back frames.
    """

    object_id: str
    tenant: str
    reader: str
    outcome: str
    video: Optional[VideoSequence] = None
    psnr_db: Optional[float] = None
    refusal_reason: str = ""
    #: Streams whose uncorrectable damage went to the concealer.
    concealed_streams: Tuple[str, ...] = ()
    flipped_bits: int = 0
    failed_blocks: int = 0
    retry_successes: int = 0
    reports: Dict[str, StorageReport] = field(default_factory=dict)
    #: Streams served by a non-primary replica (read escalation).
    escalated_streams: Tuple[str, ...] = ()


@dataclass
class FrameReadResult:
    """One served random-access frame read, classified.

    Same four-outcome ladder as :class:`ReadResult`; ``frame`` is
    ``None`` exactly when ``outcome == "refused"``. ``psnr_db`` is the
    PSNR of the decoded *GOP* against the write-time reconstruction —
    the quality of the cache unit the frame was served from.
    ``bytes_read``/``bytes_total`` expose the partial-read economics:
    how much ciphertext the seek actually pulled off the shards versus
    the object's full footprint.
    """

    object_id: str
    tenant: str
    reader: str
    display: int
    outcome: str
    frame: Optional[np.ndarray] = None
    psnr_db: Optional[float] = None
    refusal_reason: str = ""
    concealed_streams: Tuple[str, ...] = ()
    cache_hit: bool = False
    gop_anchor: int = 0
    frames_decoded: int = 0
    bytes_read: int = 0
    bytes_total: int = 0
    reports: Dict[str, StorageReport] = field(default_factory=dict)


class VideoObjectStore:
    """Sharded, content-addressed, per-tenant-encrypted video store."""

    def __init__(self, pool: Optional[ShardPool] = None,
                 keyring: Optional[Keyring] = None,
                 config: Optional[EncoderConfig] = None,
                 assignment: ClassAssignment = PAPER_TABLE1,
                 audit: Optional[AuditLog] = None,
                 seek_cache: Optional[int] = None,
                 replicas: Optional[int] = None) -> None:
        self.pool = pool if pool is not None else ShardPool()
        self.keyring = keyring if keyring is not None else Keyring()
        self.config = config if config is not None else EncoderConfig()
        self.assignment = assignment
        # ``audit or ...`` would discard an *empty* log (len() == 0).
        self.audit = audit if audit is not None else AuditLog()
        self._records: Dict[Tuple[str, str], ObjectRecord] = {}
        self._decoder = Decoder(conceal_uncorrectable=True)
        self.gop_cache = GopCache(
            capacity=service_config.resolve_seek_cache(seek_cache),
            concealed_ttl=service_config.resolve_repair_cache_ttl())
        #: Replicas written per stream (``REPRO_SERVICE_REPLICAS``),
        #: clamped to the pool width at placement time.
        self.replicas = service_config.resolve_replicas(replicas)
        #: Read-repair queue the background repair pass drains.
        self.repair = RepairQueue()

    # -- bookkeeping ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def record(self, tenant: str, object_id: str) -> ObjectRecord:
        """The record for ``(tenant, object_id)``; error if absent."""
        try:
            return self._records[(tenant, object_id)]
        except KeyError:
            raise ServiceError(
                f"tenant {tenant!r} has no object {object_id!r}"
            ) from None

    def objects(self, tenant: Optional[str] = None) -> List[ObjectRecord]:
        """All records, optionally one tenant's, in insertion order."""
        return [record for (owner, _), record in self._records.items()
                if tenant is None or owner == tenant]

    # -- write path -------------------------------------------------------

    def put_many(self, tenant: str,
                 videos: List[VideoSequence]) -> List[str]:
        """Ingest a batch of clips for ``tenant``; returns object ids.

        Clips are grouped by geometry so each group rides the batched
        encode kernel (a lone or odd-shaped clip falls back to the
        scalar-equivalent single-item batch). Identical content dedupes
        against the tenant's existing objects without touching the
        shards again.
        """
        self.keyring.add_tenant(tenant)
        encryptor = self.keyring.encryptor(tenant)
        with obs_trace.span("service.ingest", tenant=tenant,
                            clips=len(videos)):
            groups: Dict[Tuple[int, int, int], List[int]] = {}
            for index, video in enumerate(videos):
                geometry = (video.height, video.width, len(video))
                groups.setdefault(geometry, []).append(index)
            encoded_by_index: Dict[int, object] = {}
            recon_by_index: Dict[int, np.ndarray] = {}
            for indices in groups.values():
                encodes, recons = encode_batch_with_recon(
                    [videos[i] for i in indices], self.config)
                for slot, i in enumerate(indices):
                    encoded_by_index[i] = encodes[slot]
                    recon_by_index[i] = recons[slot]
            ids: List[str] = []
            for index in range(len(videos)):
                ids.append(self._place_one(
                    tenant, encryptor, encoded_by_index[index],
                    recon_by_index[index]))
            return ids

    def put(self, tenant: str, video: VideoSequence) -> str:
        """Ingest one clip (see :meth:`put_many`)."""
        return self.put_many(tenant, [video])[0]

    def _place_one(self, tenant, encryptor, encoded, recon) -> str:
        """Partition, encrypt, and place one encoded clip."""
        object_id = object_id_for(encoded.serialize())
        if (tenant, object_id) in self._records:
            obs_metrics.counter("service_ingest_dedupe_total").inc()
            self.audit.record("dedupe", tenant, object_id)
            return object_id
        importance = compute_importance(encoded.trace)
        protected = partition_video(encoded, importance, self.assignment)
        ordered = sorted(protected.streams)
        ciphertext = encryptor.encrypt_streams(
            {i: protected.streams[name]
             for i, name in enumerate(ordered)})
        stream_sha: Dict[str, str] = {}
        placement: Dict[str, str] = {}
        replicas: Dict[str, Tuple[str, ...]] = {}
        for i, name in enumerate(ordered):
            key = stream_key(tenant, object_id, name)
            chain = self.pool.place_n(key, self.replicas)
            for shard in chain:
                shard.write(key, ciphertext[i])
            stream_sha[name] = hashlib.sha256(ciphertext[i]).hexdigest()
            placement[name] = chain[0].shard_id
            replicas[name] = tuple(s.shard_id for s in chain)
        self._records[(tenant, object_id)] = ObjectRecord(
            object_id=object_id, tenant=tenant, protected=protected,
            recon=recon, stream_sha=stream_sha, placement=placement,
            frames=len(encoded.frames), replicas=replicas)
        obs_metrics.counter("service_ingest_objects_total").inc()
        self.audit.record(
            "ingest", tenant, object_id,
            detail=f"streams={len(ordered)} "
                   f"shards={sorted(set(placement.values()))}")
        return object_id

    # -- read path --------------------------------------------------------

    def get(self, tenant: str, object_id: str,
            reader: Optional[str] = None,
            rng: Optional[np.random.Generator] = None) -> ReadResult:
        """Serve one object through the full failure ladder.

        ``reader`` defaults to the owning tenant; a foreign reader must
        be on the owner's share list (:class:`~repro.errors.
        AccessDeniedError` otherwise) and always decrypts under the
        *owner's* key (:class:`~repro.errors.StaleKeyError` if that key
        was retired). ``rng`` seeds the device error draws — the
        loadgen passes one per planned operation so runs replay.
        """
        reader = reader if reader is not None else tenant
        record = self.record(tenant, object_id)
        with obs_trace.span("service.read", tenant=tenant,
                            reader=reader, object_id=object_id[:12]):
            self.keyring.add_tenant(reader)
            try:
                self.keyring.check_read(tenant, reader)
                encryptor = self.keyring.encryptor(tenant)
            except ServiceError as exc:
                self.audit.record("denied", reader, object_id,
                                  detail=str(exc))
                obs_metrics.counter("service_reads_denied_total").inc()
                raise
            result = self._read_streams(record, encryptor, reader,
                                        rng or np.random.default_rng())
        self.audit.record(
            "read", reader, object_id,
            detail=(f"outcome={result.outcome}"
                    + (f" reason={result.refusal_reason}"
                       if result.refusal_reason else "")))
        obs_metrics.counter(
            f"service_reads_{result.outcome}_total").inc()
        return result

    @staticmethod
    def _rung(refusal: str, report: StorageReport) -> int:
        """Ladder rank of one replica read: 0 clean, 1 corrected,
        2 concealed-tier damage, 3 refused. Lower is better."""
        if refusal:
            return 3
        if report.uncorrectable:
            return 2
        if report.retry_successes > 0:
            return 1
        return 0

    def _read_one_replicated(self, record: ObjectRecord, name: str,
                             rng: np.random.Generator):
        """Walk ``name``'s replica chain; serve the best rung.

        Replicas are read in ring order (primary first) and the walk
        stops at the first *clean* copy — a damaged or refused primary
        escalates to the next replica rather than straight to
        concealment or refusal. Returns ``(data, report, refusal,
        replica_index, rung)``; ``data``/``report`` are ``None`` only
        when every replica was unreadable (flaked or drained).
        """
        key = stream_key(record.tenant, record.object_id, name)
        scheme = scheme_by_name(name)
        chain = record.replica_chain(name)
        best = None
        flaked = 0
        for index, shard_id in enumerate(chain):
            shard = self.pool.shard(shard_id)
            if not shard.has(key):
                continue
            obs_metrics.counter("service_replica_reads_total").inc()
            try:
                data, report = shard.read(key, scheme, rng)
            except TransientShardError:
                flaked += 1
                obs_metrics.counter(
                    "service_replica_read_faults_total").inc()
                continue
            refusal = self._refusal_for(record, name, data, report)
            rung = self._rung(refusal, report)
            if best is None or rung < best[4]:
                best = (data, report, refusal, index, rung)
            if rung == 0:
                break
        if best is None:
            if flaked:
                # An operational fault, not data damage: every replica
                # flaked mid-read. Retryable — let the front-end's
                # backoff ladder have it rather than refusing.
                raise TransientShardError(
                    f"stream {name}: all {flaked} readable replica(s) "
                    f"flaked")
            return (None, None,
                    f"stream {name}: no replica holds the stream",
                    0, 3)
        if best[3] > 0:
            obs_metrics.counter(
                "service_read_escalations_total").inc()
        return best

    def _read_streams(self, record: ObjectRecord, encryptor, reader: str,
                      rng: np.random.Generator) -> ReadResult:
        """Pull every stream off its replicas and classify the outcome."""
        protected = record.protected
        ordered = sorted(protected.streams)
        read_back: Dict[str, bytes] = {}
        reports: Dict[str, StorageReport] = {}
        refusal = ""
        escalated: List[str] = []
        needs_repair = False
        # Sorted-name order mirrors the core pipeline: a seeded rng
        # yields one flip pattern per plan seed regardless of placement.
        for name in ordered:
            data, report, stream_refusal, index, rung = \
                self._read_one_replicated(record, name, rng)
            if data is not None:
                read_back[name] = data
            if report is not None:
                reports[name] = report
            if index > 0:
                escalated.append(name)
            if rung > 0 or index > 0:
                needs_repair = True
            refusal = refusal or stream_refusal
        if needs_repair:
            self.repair.enqueue(record.tenant, record.object_id)
        result = ReadResult(
            object_id=record.object_id, tenant=record.tenant,
            reader=reader, outcome=CLEAN, reports=reports,
            flipped_bits=sum(r.flipped_bits for r in reports.values()),
            failed_blocks=sum(r.failed_blocks for r in reports.values()),
            retry_successes=sum(r.retry_successes
                                for r in reports.values()),
            escalated_streams=tuple(escalated))
        if refusal:
            result.outcome = REFUSED
            result.refusal_reason = refusal
            return result
        decrypted = encryptor.decrypt_streams(
            {i: read_back[name] for i, name in enumerate(ordered)})
        plaintext = {name: decrypted[i][:len(protected.streams[name])]
                     for i, name in enumerate(ordered)}
        payloads = merge_streams(protected, plaintext)
        corrupted = protected.encoded.with_payloads(payloads)
        # Uncorrectable block coordinates survive the positional cipher,
        # so stream-bit damage projects straight into frame damage —
        # same construction as the core pipeline's conceal path.
        damage = {
            name: [(min(b.bit_start, protected.stream_bits[name]),
                    min(b.bit_end, protected.stream_bits[name]))
                   for b in report.uncorrectable]
            for name, report in reports.items()
            if report.uncorrectable and name in protected.stream_bits
        }
        frame_damage = (map_stream_damage(protected, damage)
                        if damage else {})
        result.video = self._decoder.decode(corrupted, frame_damage)
        result.psnr_db = video_psnr(record.recon_sequence(), result.video)
        if damage:
            result.outcome = CONCEALED
            result.concealed_streams = tuple(sorted(damage))
        elif result.retry_successes > 0:
            result.outcome = CORRECTED
        return result

    # -- random-access read path ------------------------------------------

    def get_frame(self, tenant: str, object_id: str, display: int,
                  reader: Optional[str] = None,
                  rng: Optional[np.random.Generator] = None
                  ) -> FrameReadResult:
        """Serve one display frame, reading only what the seek index
        says is needed.

        The read unit is the frame's display GOP: the seek index
        resolves ``display`` to its anchor I frame, the dependency
        closure of the GOP's frames decides which container positions
        must decode, and only the ECC blocks carrying those frames'
        stream segments are pulled off the shards, decrypted in place
        (CTR counter jump), merged, and partially decoded. Decoded
        GOPs land in the store's LRU (:class:`~repro.service.cache.
        GopCache`), so scrubbing within a GOP hits memory.

        ``REPRO_SEEK_DISABLE`` forces the whole-clip :meth:`get` path
        (the fast path's escape hatch); the same four-outcome ladder
        applies either way, minus the whole-stream integrity hash on
        partial reads — a partial read cannot hash bytes it never
        fetched, so silent-miscorrection refusal rides the per-block
        ECC verdicts instead (the hash check still runs whenever the
        aligned window happens to cover a whole stream).
        """
        reader = reader if reader is not None else tenant
        record = self.record(tenant, object_id)
        if not 0 <= display < record.frames:
            raise ServiceError(
                f"display {display} outside object "
                f"{object_id[:12]}'s 0..{record.frames - 1}")
        with obs_trace.span("seek.get_frame", tenant=tenant,
                            reader=reader, object_id=object_id[:12],
                            display=display):
            self.keyring.add_tenant(reader)
            try:
                self.keyring.check_read(tenant, reader)
                encryptor = self.keyring.encryptor(tenant)
            except ServiceError as exc:
                self.audit.record("denied", reader, object_id,
                                  detail=str(exc))
                obs_metrics.counter("service_reads_denied_total").inc()
                raise
            rng = rng if rng is not None else np.random.default_rng()
            if service_config.seek_disabled():
                result = self._frame_via_full_read(record, encryptor,
                                                   reader, display, rng)
            else:
                result = self._frame_via_seek(record, encryptor, reader,
                                              display, rng)
        self.audit.record(
            "read_frame", reader, object_id,
            detail=(f"display={display} outcome={result.outcome}"
                    + (" cache_hit" if result.cache_hit else "")
                    + (f" reason={result.refusal_reason}"
                       if result.refusal_reason else "")))
        obs_metrics.counter(
            f"service_frame_reads_{result.outcome}_total").inc()
        return result

    def _frame_via_full_read(self, record: ObjectRecord, encryptor,
                             reader: str, display: int,
                             rng: np.random.Generator) -> FrameReadResult:
        """The escape hatch: whole-clip read, then slice the frame."""
        full = self._read_streams(record, encryptor, reader, rng)
        total = sum(len(record.protected.streams[name])
                    for name in record.protected.streams)
        result = FrameReadResult(
            object_id=record.object_id, tenant=record.tenant,
            reader=reader, display=display, outcome=full.outcome,
            psnr_db=full.psnr_db, refusal_reason=full.refusal_reason,
            concealed_streams=full.concealed_streams,
            frames_decoded=record.frames, bytes_read=total,
            bytes_total=total, reports=full.reports)
        if full.video is not None:
            result.frame = full.video.frames[display]
        return result

    def _frame_via_seek(self, record: ObjectRecord, encryptor,
                        reader: str, display: int,
                        rng: np.random.Generator) -> FrameReadResult:
        """Partial read + partial decode of the frame's display GOP."""
        protected = record.protected
        encoded = protected.encoded
        index = encoded.seek_index_or_build()
        entry = index.gop_for_display(display)
        anchors = [e.anchor_display for e in index.gops]
        which = anchors.index(entry.anchor_display)
        gop_start = entry.anchor_display
        gop_stop = (anchors[which + 1] if which + 1 < len(anchors)
                    else index.num_frames)
        bytes_total = sum(len(protected.streams[name])
                          for name in protected.streams)
        key = (record.tenant, record.object_id, gop_start)
        cached = self.gop_cache.get(key)
        if cached is not None:
            return FrameReadResult(
                object_id=record.object_id, tenant=record.tenant,
                reader=reader, display=display, outcome=cached.outcome,
                frame=cached.frames[display], psnr_db=cached.psnr_db,
                refusal_reason=cached.refusal_reason,
                concealed_streams=cached.concealed_streams,
                cache_hit=True, gop_anchor=gop_start,
                bytes_total=bytes_total)
        positions = dependency_closure(encoded,
                                       range(gop_start, gop_stop))
        bit_ranges = stream_ranges_for_frames(protected, positions)
        ordered = sorted(protected.streams)
        buffers: Dict[str, bytes] = {}
        reports: Dict[str, StorageReport] = {}
        damage: Dict[str, List[Tuple[int, int]]] = {}
        refusal = ""
        bytes_read = 0
        header_scheme = protected.assignment.header_scheme.name
        needs_repair = False
        with obs_trace.span("seek.fetch", gop=gop_start,
                            frames=len(positions)):
            for stream_id, name in enumerate(ordered):
                buffer = bytearray(len(protected.streams[name]))
                if name in bit_ranges:
                    lo_bit, hi_bit = bit_ranges[name]
                    got = self._range_read_replicated(
                        record, name, rng, lo_bit // 8, -(-hi_bit // 8),
                        header_scheme)
                    (data, report, stream_refusal, a_start, a_end,
                     index, rung) = got
                    if data is None:
                        refusal = refusal or stream_refusal
                        needs_repair = True
                        continue
                    if rung > 0 or index > 0:
                        needs_repair = True
                    buffer[a_start:a_start + len(data)] = \
                        encryptor.decrypt_at(stream_id, data, a_start)
                    reports[name] = report
                    bytes_read += len(data)
                    refusal = refusal or stream_refusal
                    if report.uncorrectable:
                        limit = protected.stream_bits[name]
                        shifted = [
                            (min(8 * a_start + b.bit_start, limit),
                             min(8 * a_start + b.bit_end, limit))
                            for b in report.uncorrectable]
                        shifted = [(lo, hi) for lo, hi in shifted
                                   if hi > lo]
                        if shifted:
                            damage[name] = shifted
                buffers[name] = bytes(buffer)
        if needs_repair:
            self.repair.enqueue(record.tenant, record.object_id)
        result = FrameReadResult(
            object_id=record.object_id, tenant=record.tenant,
            reader=reader, display=display, outcome=CLEAN,
            gop_anchor=gop_start, frames_decoded=len(positions),
            bytes_read=bytes_read, bytes_total=bytes_total,
            reports=reports)
        if refusal:
            result.outcome = REFUSED
            result.refusal_reason = refusal
            return result
        payloads = merge_streams(protected, buffers)
        corrupted = encoded.with_payloads(payloads)
        frame_damage = (map_stream_damage(protected, damage)
                        if damage else {})
        gop = self._decoder.decode_range(corrupted, gop_start, gop_stop,
                                         frame_damage)
        reference = VideoSequence(
            frames=list(record.recon[gop_start:gop_stop]))
        result.psnr_db = video_psnr(reference, gop)
        if damage:
            result.outcome = CONCEALED
            result.concealed_streams = tuple(sorted(damage))
        elif sum(r.retry_successes for r in reports.values()) > 0:
            result.outcome = CORRECTED
        frames = {gop_start + k: frame
                  for k, frame in enumerate(gop.frames)}
        result.frame = frames[display]
        self.gop_cache.put(key, CachedGop(
            anchor_display=gop_start, frames=frames,
            outcome=result.outcome, psnr_db=result.psnr_db,
            refusal_reason=result.refusal_reason,
            concealed_streams=result.concealed_streams))
        return result

    def _range_read_replicated(self, record: ObjectRecord, name: str,
                               rng: np.random.Generator, lo_byte: int,
                               hi_byte: int, header_scheme: str):
        """Replica-walking :meth:`Shard.read_range` for the seek path.

        Same escalation contract as :meth:`_read_one_replicated`, but
        over a byte window. Returns ``(data, report, refusal,
        aligned_start, aligned_end, replica_index, rung)``; ``data``
        is ``None`` only when no replica could be read at all.
        """
        key = stream_key(record.tenant, record.object_id, name)
        scheme = scheme_by_name(name)
        chain = record.replica_chain(name)
        best = None
        flaked = 0
        for index, shard_id in enumerate(chain):
            shard = self.pool.shard(shard_id)
            if not shard.has(key):
                continue
            obs_metrics.counter("service_replica_reads_total").inc()
            try:
                data, report, a_start, a_end = shard.read_range(
                    key, scheme, rng, lo_byte, hi_byte)
            except TransientShardError:
                flaked += 1
                obs_metrics.counter(
                    "service_replica_read_faults_total").inc()
                continue
            refusal = self._partial_refusal_for(
                record, name, data, report, a_start, a_end,
                header_scheme)
            rung = self._rung(refusal, report)
            if best is None or rung < best[6]:
                best = (data, report, refusal, a_start, a_end, index,
                        rung)
            if rung == 0:
                break
        if best is None:
            if flaked:
                raise TransientShardError(
                    f"stream {name}: all {flaked} readable replica(s) "
                    f"flaked")
            return (None, None,
                    f"stream {name}: no replica holds the stream",
                    0, 0, 0, 3)
        if best[5] > 0:
            obs_metrics.counter("service_read_escalations_total").inc()
        return best

    def _partial_refusal_for(self, record: ObjectRecord, name: str,
                             data: bytes, report: StorageReport,
                             a_start: int, a_end: int,
                             header_scheme: str) -> str:
        """Refusal reason for one partial stream read, or ``""``."""
        if report.miscorrected_blocks > 0:
            return (f"stream {name}: {report.miscorrected_blocks} "
                    f"silently miscorrected block(s)")
        whole = (a_start == 0
                 and a_end >= len(record.protected.streams[name]))
        clean_claim = (report.flipped_bits == 0
                       and report.failed_blocks == 0)
        if whole and clean_claim:
            digest = hashlib.sha256(data).hexdigest()
            if digest != record.stream_sha[name]:
                return (f"stream {name}: integrity hash mismatch on a "
                        f"read the device reported clean")
        if report.failed_blocks and name == header_scheme:
            return (f"stream {name}: uncorrectable damage in a "
                    f"precise-scheme stream")
        return ""

    def _refusal_for(self, record: ObjectRecord, name: str, data: bytes,
                     report: StorageReport) -> str:
        """The refusal reason for one stream's read, or ``""``."""
        if report.miscorrected_blocks > 0:
            return (f"stream {name}: {report.miscorrected_blocks} "
                    f"silently miscorrected block(s)")
        clean_claim = (report.flipped_bits == 0
                       and report.failed_blocks == 0)
        if clean_claim:
            digest = hashlib.sha256(data).hexdigest()
            if digest != record.stream_sha[name]:
                return (f"stream {name}: integrity hash mismatch on a "
                        f"read the device reported clean")
        header = record.protected.assignment.header_scheme.name
        if report.failed_blocks and name == header:
            return (f"stream {name}: uncorrectable damage in a "
                    f"precise-scheme stream")
        return ""
