"""The content-addressed object store over the shard pool.

This is the service's heart: :class:`VideoObjectStore` turns raw clips
into placed ciphertext and turns placed ciphertext back into decoded
video, with an explicit, audited answer for *how good* that video is.

Write path (:meth:`VideoObjectStore.put_many`): clips are batch-encoded
(grouped by geometry so the vectorized kernel applies), importance-
analyzed, partitioned into reliability streams, encrypted under the
owning tenant's CTR key, and placed stream-by-stream onto the shard
pool's consistent-hash ring. The object id is the SHA-256 of the
serialized container, so identical content dedupes within a tenant.
A SHA-256 of every ciphertext stream is recorded at write time — the
integrity reference the read path checks against.

Read path (:meth:`VideoObjectStore.get`) — the four-outcome ladder:

* ``clean`` — no retries burned, no uncorrectable damage. Bit flips
  inside weakly protected streams are *expected* here — they are the
  approximation contract the paper sells, and they show up as PSNR
  movement, not as a failure outcome;
* ``corrected`` — the device retry ladder re-read detected-
  uncorrectable blocks back to health (``retry_successes > 0``);
* ``concealed`` — blocks stayed uncorrectable, and their stream
  coordinates were projected through the positional cipher into frame
  damage for the concealing decoder (never entropy-decoding known
  garbage);
* ``refused`` — the service will not serve the bytes: the read-back
  hash mismatches the write-time record while the device *claims* a
  clean read (the signature of silent miscorrection or substrate rot),
  the exact-ECC decoder reported miscorrected blocks, or a
  precise-scheme stream carries uncorrectable damage.

Refusal is the invariant the loadgen's degradation exhibit leans on:
aged shards may force concealment, but never a silently wrong frame.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codec.batch import encode_batch_with_recon
from ..codec.config import EncoderConfig
from ..codec.decoder import Decoder
from ..core.assignment import PAPER_TABLE1, ClassAssignment
from ..core.importance import compute_importance
from ..core.partition import (
    ProtectedVideo,
    map_stream_damage,
    merge_streams,
    partition_video,
)
from ..errors import ReadRefusedError, ServiceError
from ..metrics.psnr import video_psnr
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..storage.device import StorageReport
from ..storage.ecc import scheme_by_name
from ..video.frame import VideoSequence
from .audit import AuditLog
from .keyring import Keyring
from .shards import ShardPool

#: Read outcomes, from best to worst.
CLEAN = "clean"
CORRECTED = "corrected"
CONCEALED = "concealed"
REFUSED = "refused"


def object_id_for(serialized: bytes) -> str:
    """Content address of a serialized container: its SHA-256 hex."""
    return hashlib.sha256(serialized).hexdigest()


def stream_key(tenant: str, object_id: str, stream: str) -> str:
    """The placement-ring key of one stored reliability stream."""
    return f"{tenant}/{object_id}/{stream}"


@dataclass
class ObjectRecord:
    """Everything the store remembers about one placed object.

    The ``protected`` container (headers + pivot tables + clean
    plaintext streams) is the object's *precise* storage — the paper
    keeps it off the approximate device entirely — so holding it in the
    record is the simulation's equivalent of the precise partition.
    """

    object_id: str
    tenant: str
    protected: ProtectedVideo
    #: Error-free reconstruction ``(frames, H, W) uint8`` — the PSNR
    #: reference for every later read of this object.
    recon: np.ndarray
    #: Write-time SHA-256 hex of each ciphertext stream.
    stream_sha: Dict[str, str]
    #: Stream name -> shard id chosen by the ring at write time.
    placement: Dict[str, str]
    frames: int = 0

    def recon_sequence(self) -> VideoSequence:
        """The reconstruction as a :class:`VideoSequence`."""
        return VideoSequence(frames=list(self.recon))


@dataclass
class ReadResult:
    """One served read, classified.

    ``video`` is ``None`` exactly when ``outcome == "refused"`` — a
    refused read never hands back frames.
    """

    object_id: str
    tenant: str
    reader: str
    outcome: str
    video: Optional[VideoSequence] = None
    psnr_db: Optional[float] = None
    refusal_reason: str = ""
    #: Streams whose uncorrectable damage went to the concealer.
    concealed_streams: Tuple[str, ...] = ()
    flipped_bits: int = 0
    failed_blocks: int = 0
    retry_successes: int = 0
    reports: Dict[str, StorageReport] = field(default_factory=dict)


class VideoObjectStore:
    """Sharded, content-addressed, per-tenant-encrypted video store."""

    def __init__(self, pool: Optional[ShardPool] = None,
                 keyring: Optional[Keyring] = None,
                 config: Optional[EncoderConfig] = None,
                 assignment: ClassAssignment = PAPER_TABLE1,
                 audit: Optional[AuditLog] = None) -> None:
        self.pool = pool if pool is not None else ShardPool()
        self.keyring = keyring if keyring is not None else Keyring()
        self.config = config if config is not None else EncoderConfig()
        self.assignment = assignment
        # ``audit or ...`` would discard an *empty* log (len() == 0).
        self.audit = audit if audit is not None else AuditLog()
        self._records: Dict[Tuple[str, str], ObjectRecord] = {}
        self._decoder = Decoder(conceal_uncorrectable=True)

    # -- bookkeeping ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def record(self, tenant: str, object_id: str) -> ObjectRecord:
        """The record for ``(tenant, object_id)``; error if absent."""
        try:
            return self._records[(tenant, object_id)]
        except KeyError:
            raise ServiceError(
                f"tenant {tenant!r} has no object {object_id!r}"
            ) from None

    def objects(self, tenant: Optional[str] = None) -> List[ObjectRecord]:
        """All records, optionally one tenant's, in insertion order."""
        return [record for (owner, _), record in self._records.items()
                if tenant is None or owner == tenant]

    # -- write path -------------------------------------------------------

    def put_many(self, tenant: str,
                 videos: List[VideoSequence]) -> List[str]:
        """Ingest a batch of clips for ``tenant``; returns object ids.

        Clips are grouped by geometry so each group rides the batched
        encode kernel (a lone or odd-shaped clip falls back to the
        scalar-equivalent single-item batch). Identical content dedupes
        against the tenant's existing objects without touching the
        shards again.
        """
        self.keyring.add_tenant(tenant)
        encryptor = self.keyring.encryptor(tenant)
        with obs_trace.span("service.ingest", tenant=tenant,
                            clips=len(videos)):
            groups: Dict[Tuple[int, int, int], List[int]] = {}
            for index, video in enumerate(videos):
                geometry = (video.height, video.width, len(video))
                groups.setdefault(geometry, []).append(index)
            encoded_by_index: Dict[int, object] = {}
            recon_by_index: Dict[int, np.ndarray] = {}
            for indices in groups.values():
                encodes, recons = encode_batch_with_recon(
                    [videos[i] for i in indices], self.config)
                for slot, i in enumerate(indices):
                    encoded_by_index[i] = encodes[slot]
                    recon_by_index[i] = recons[slot]
            ids: List[str] = []
            for index in range(len(videos)):
                ids.append(self._place_one(
                    tenant, encryptor, encoded_by_index[index],
                    recon_by_index[index]))
            return ids

    def put(self, tenant: str, video: VideoSequence) -> str:
        """Ingest one clip (see :meth:`put_many`)."""
        return self.put_many(tenant, [video])[0]

    def _place_one(self, tenant, encryptor, encoded, recon) -> str:
        """Partition, encrypt, and place one encoded clip."""
        object_id = object_id_for(encoded.serialize())
        if (tenant, object_id) in self._records:
            obs_metrics.counter("service_ingest_dedupe_total").inc()
            self.audit.record("dedupe", tenant, object_id)
            return object_id
        importance = compute_importance(encoded.trace)
        protected = partition_video(encoded, importance, self.assignment)
        ordered = sorted(protected.streams)
        ciphertext = encryptor.encrypt_streams(
            {i: protected.streams[name]
             for i, name in enumerate(ordered)})
        stream_sha: Dict[str, str] = {}
        placement: Dict[str, str] = {}
        for i, name in enumerate(ordered):
            key = stream_key(tenant, object_id, name)
            shard = self.pool.place(key)
            shard.write(key, ciphertext[i])
            stream_sha[name] = hashlib.sha256(ciphertext[i]).hexdigest()
            placement[name] = shard.shard_id
        self._records[(tenant, object_id)] = ObjectRecord(
            object_id=object_id, tenant=tenant, protected=protected,
            recon=recon, stream_sha=stream_sha, placement=placement,
            frames=len(encoded.frames))
        obs_metrics.counter("service_ingest_objects_total").inc()
        self.audit.record(
            "ingest", tenant, object_id,
            detail=f"streams={len(ordered)} "
                   f"shards={sorted(set(placement.values()))}")
        return object_id

    # -- read path --------------------------------------------------------

    def get(self, tenant: str, object_id: str,
            reader: Optional[str] = None,
            rng: Optional[np.random.Generator] = None) -> ReadResult:
        """Serve one object through the full failure ladder.

        ``reader`` defaults to the owning tenant; a foreign reader must
        be on the owner's share list (:class:`~repro.errors.
        AccessDeniedError` otherwise) and always decrypts under the
        *owner's* key (:class:`~repro.errors.StaleKeyError` if that key
        was retired). ``rng`` seeds the device error draws — the
        loadgen passes one per planned operation so runs replay.
        """
        reader = reader if reader is not None else tenant
        record = self.record(tenant, object_id)
        with obs_trace.span("service.read", tenant=tenant,
                            reader=reader, object_id=object_id[:12]):
            self.keyring.add_tenant(reader)
            try:
                self.keyring.check_read(tenant, reader)
                encryptor = self.keyring.encryptor(tenant)
            except ServiceError as exc:
                self.audit.record("denied", reader, object_id,
                                  detail=str(exc))
                obs_metrics.counter("service_reads_denied_total").inc()
                raise
            result = self._read_streams(record, encryptor, reader,
                                        rng or np.random.default_rng())
        self.audit.record(
            "read", reader, object_id,
            detail=(f"outcome={result.outcome}"
                    + (f" reason={result.refusal_reason}"
                       if result.refusal_reason else "")))
        obs_metrics.counter(
            f"service_reads_{result.outcome}_total").inc()
        return result

    def _read_streams(self, record: ObjectRecord, encryptor, reader: str,
                      rng: np.random.Generator) -> ReadResult:
        """Pull every stream off its shard and classify the outcome."""
        protected = record.protected
        ordered = sorted(protected.streams)
        read_back: Dict[str, bytes] = {}
        reports: Dict[str, StorageReport] = {}
        refusal = ""
        # Sorted-name order mirrors the core pipeline: a seeded rng
        # yields one flip pattern per plan seed regardless of placement.
        for name in ordered:
            key = stream_key(record.tenant, record.object_id, name)
            shard = self.pool.shard(record.placement[name])
            data, report = shard.read(key, scheme_by_name(name), rng)
            read_back[name] = data
            reports[name] = report
            refusal = refusal or self._refusal_for(record, name, data,
                                                   report)
        result = ReadResult(
            object_id=record.object_id, tenant=record.tenant,
            reader=reader, outcome=CLEAN, reports=reports,
            flipped_bits=sum(r.flipped_bits for r in reports.values()),
            failed_blocks=sum(r.failed_blocks for r in reports.values()),
            retry_successes=sum(r.retry_successes
                                for r in reports.values()))
        if refusal:
            result.outcome = REFUSED
            result.refusal_reason = refusal
            return result
        decrypted = encryptor.decrypt_streams(
            {i: read_back[name] for i, name in enumerate(ordered)})
        plaintext = {name: decrypted[i][:len(protected.streams[name])]
                     for i, name in enumerate(ordered)}
        payloads = merge_streams(protected, plaintext)
        corrupted = protected.encoded.with_payloads(payloads)
        # Uncorrectable block coordinates survive the positional cipher,
        # so stream-bit damage projects straight into frame damage —
        # same construction as the core pipeline's conceal path.
        damage = {
            name: [(min(b.bit_start, protected.stream_bits[name]),
                    min(b.bit_end, protected.stream_bits[name]))
                   for b in report.uncorrectable]
            for name, report in reports.items()
            if report.uncorrectable and name in protected.stream_bits
        }
        frame_damage = (map_stream_damage(protected, damage)
                        if damage else {})
        result.video = self._decoder.decode(corrupted, frame_damage)
        result.psnr_db = video_psnr(record.recon_sequence(), result.video)
        if damage:
            result.outcome = CONCEALED
            result.concealed_streams = tuple(sorted(damage))
        elif result.retry_successes > 0:
            result.outcome = CORRECTED
        return result

    def _refusal_for(self, record: ObjectRecord, name: str, data: bytes,
                     report: StorageReport) -> str:
        """The refusal reason for one stream's read, or ``""``."""
        if report.miscorrected_blocks > 0:
            return (f"stream {name}: {report.miscorrected_blocks} "
                    f"silently miscorrected block(s)")
        clean_claim = (report.flipped_bits == 0
                       and report.failed_blocks == 0)
        if clean_claim:
            digest = hashlib.sha256(data).hexdigest()
            if digest != record.stream_sha[name]:
                return (f"stream {name}: integrity hash mismatch on a "
                        f"read the device reported clean")
        header = record.protected.assignment.header_scheme.name
        if report.failed_blocks and name == header:
            return (f"stream {name}: uncorrectable damage in a "
                    f"precise-scheme stream")
        return ""
