"""Command-line interface.

``python -m repro <command>`` drives the library end to end from a
shell, the way a downstream user would script it:

* ``synth``    — generate a synthetic raw clip (REPROYUV container);
* ``encode``   — raw clip -> serialized encoded video;
* ``decode``   — encoded video -> raw clip;
* ``analyze``  — VideoApp importance report for an input clip;
* ``store``    — full approximate-storage round trip with a quality and
  density report;
* ``sweep``    — Monte Carlo error-rate sweep on the trial engine
  (parallel with ``--workers``/``REPRO_NUM_WORKERS``, per-trial
  watchdogs with ``--timeout``, resumable with ``--journal``, live
  status with ``--progress``, stage timing with ``--trace``);
* ``retention`` — quality vs retention time under the lifetime
  mitigations (scrubbing, re-read retries, decoder concealment), per
  ECC scheme, on the trial engine;
* ``fuzz``     — decoder no-crash fuzz harness (random bit/byte/
  truncation corruptions under a deadline, crash corpus on failure,
  corpus replay with ``--replay``);
* ``serve``    — scripted session against the sharded video store
  service (put/get/share/retire/age/stats/audit commands from a
  script file, stdin, or the built-in ``--demo``);
* ``loadgen``  — seeded concurrent load against the service front-end
  with a digest-replayable report: p50/p99 read latency, ingest
  throughput, and the degradation curve over shard retention age (the
  "serving under decay" exhibit — see docs/SERVICE.md);
* ``seek``     — random-access read exhibit: per-seek latency
  (p50/p99), PSNR under damage, compression ratio, and the partial-
  versus-full-decode speedup over a GOP size × CRF × shard age grid,
  with a deterministic sweep digest (see docs/EXPERIMENTS.md);
* ``modes``    — AES block-mode compatibility scorecard.

Observability flags and the ``REPRO_*`` environment variables behind
them are documented in docs/OBSERVABILITY.md.

Encoded files serialize only headers + payloads; ``analyze`` and
``store`` therefore take the *raw* clip and re-encode (the paper's
analysis is an encoder-side step and needs the trace).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from .analysis.reporting import format_table
from .codec import Decoder, EncodedVideo, Encoder, EncoderConfig, EntropyCoder
from .core import ApproximateVideoStore, PAPER_TABLE1, compute_importance
from .crypto import StreamEncryptor, analyze_all_modes
from .metrics import video_psnr
from .video import (
    SceneConfig,
    read_raw_video,
    synthesize_scene,
    write_raw_video,
)


def _add_encoder_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--crf", type=int, default=24,
                        help="quality target, 0..51, lower = better")
    parser.add_argument("--gop", type=int, default=12,
                        help="I-frame period in frames")
    parser.add_argument("--bframes", type=int, default=0,
                        help="B-frames between anchors")
    parser.add_argument("--slices", type=int, default=1,
                        help="slices per frame")
    parser.add_argument("--entropy", choices=["cabac", "cavlc"],
                        default="cabac", help="entropy coder")


def _encoder_config(args: argparse.Namespace) -> EncoderConfig:
    return EncoderConfig(
        crf=args.crf, gop_size=args.gop, bframes=args.bframes,
        slices=args.slices,
        entropy_coder=(EntropyCoder.CABAC if args.entropy == "cabac"
                       else EntropyCoder.CAVLC),
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    video = synthesize_scene(SceneConfig(
        width=args.width, height=args.height, num_frames=args.frames,
        seed=args.seed, num_objects=args.objects,
        noise_sigma=args.noise))
    write_raw_video(args.output, video)
    print(f"wrote {args.output}: {len(video)} frames "
          f"{video.width}x{video.height}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    video = read_raw_video(args.input)
    encoded = Encoder(_encoder_config(args)).encode(video)
    # Files written by the CLI carry the v1 seek index so downstream
    # tools get random access; --no-index emits the legacy v0 bytes.
    data = encoded.serialize(include_index=not args.no_index)
    with open(args.output, "wb") as f:
        f.write(data)
    ratio = video.total_pixels * 8 / max(encoded.payload_bits, 1)
    print(f"wrote {args.output}: {len(data)} bytes "
          f"({ratio:.1f}x compression)")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as f:
        encoded = EncodedVideo.deserialize(f.read())
    video = Decoder().decode(encoded)
    write_raw_video(args.output, video)
    print(f"wrote {args.output}: {len(video)} frames "
          f"{video.width}x{video.height}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    video = read_raw_video(args.input)
    encoded = Encoder(_encoder_config(args)).encode(video)
    assert encoded.trace is not None
    importance = compute_importance(encoded.trace)
    values = importance.flat
    print(format_table(("statistic", "value"), [
        ("frames", len(video)),
        ("macroblocks", values.size),
        ("payload bits", encoded.payload_bits),
        ("min importance", f"{values.min():.1f}"),
        ("median importance", f"{float(np.median(values)):.1f}"),
        ("max importance", f"{values.max():.1f}"),
        ("analysis time", f"{importance.analysis_seconds * 1e3:.1f} ms"),
    ], title=f"VideoApp analysis of {args.input}"))
    from .core import macroblock_bits, storage_fraction_by_class
    fractions = storage_fraction_by_class(
        macroblock_bits(encoded.trace, importance))
    print()
    print(format_table(("importance class", "storage %", "Table 1 scheme"), [
        (index, f"{100 * fraction:.1f}",
         PAPER_TABLE1.scheme_for_class(index).name)
        for index, fraction in sorted(fractions.items())
    ], title="storage by importance class"))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    video = read_raw_video(args.input)
    encryptor = None
    if args.encrypt:
        encryptor = StreamEncryptor(
            key=bytes.fromhex(args.key), master_iv=bytes.fromhex(args.iv))
    store = ApproximateVideoStore(config=_encoder_config(args),
                                  encryptor=encryptor)
    stored = store.put(video)
    report = stored.density()
    clean = store.reconstruct(stored)
    damaged = store.read(stored, rng=np.random.default_rng(args.seed))
    rows = [
        ("payload bits", report.payload_bits),
        ("precise bits (headers+pivots)", report.header_bits),
        ("stored bits incl. ECC", report.stored_bits),
        ("cells/pixel", f"{report.cells_per_pixel:.4f}"),
        ("ECC overhead", f"{100 * report.ecc_overhead:.1f}% "
                         f"(uniform: 31.3%)"),
        ("encrypted", stored.encrypted),
        ("PSNR clean decode", f"{video_psnr(video, clean):.2f} dB"),
        ("PSNR after storage", f"{video_psnr(video, damaged):.2f} dB"),
    ]
    print(format_table(("metric", "value"), rows,
                       title=f"approximate storage of {args.input}"))
    if args.output:
        write_raw_video(args.output, damaged)
        print(f"wrote read-back video to {args.output}")
    return 0


def _resolve_trace_path(args: argparse.Namespace) -> Optional[str]:
    """Effective Chrome-trace output path: ``--trace`` wins, then
    ``REPRO_TRACE``; None means tracing stays off."""
    from .obs.trace import TRACE_ENV

    path = getattr(args, "trace", None)
    if path:
        return path
    return os.environ.get(TRACE_ENV, "").strip() or None


def _ecc_calibration() -> None:
    """One tiny exact-ECC round trip, recorded as an ``ecc.calibration``
    span.

    Quality sweeps inject into payload bits and never touch the BCH
    machinery, so a traced sweep would otherwise answer "where did the
    time go" with no ECC stage at all; this gives the trace a measured
    BCH encode/decode yardstick at negligible cost (one 64-byte blob).
    """
    from .obs import trace as obs_trace
    from .storage.device import ApproximateDevice
    from .storage.ecc import scheme_by_name

    with obs_trace.span("ecc.calibration"):
        device = ApproximateDevice(rng=np.random.default_rng(0), exact=True)
        device.store_and_read(bytes(range(64)), scheme_by_name("BCH-6"))


def _export_trace(tracer, trace_path: Optional[str],
                  jsonl_path: Optional[str]) -> None:
    """Drain the tracer and write the requested export files."""
    from .obs.trace import write_chrome_trace, write_jsonl

    records = tracer.drain()
    if trace_path:
        write_chrome_trace(trace_path, records)
        print(f"wrote Chrome trace ({len(records)} spans) to {trace_path}"
              f" — load in chrome://tracing or https://ui.perfetto.dev")
    if jsonl_path:
        write_jsonl(jsonl_path, records)
        print(f"wrote span JSONL ({len(records)} spans) to {jsonl_path}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_run_stats
    from .analysis.sweeps import quality_sweep
    from .obs import trace as obs_trace
    from .runtime import session_cache

    trace_path = _resolve_trace_path(args)
    jsonl_path = args.trace_jsonl
    tracer = (obs_trace.enable() if trace_path or jsonl_path
              else obs_trace.active())
    with obs_trace.span("repro.sweep", input=args.input):
        if tracer is not None:
            _ecc_calibration()
        video = read_raw_video(args.input)
        config = _encoder_config(args)
        cache = session_cache()
        rates = tuple(float(r) for r in args.rates.split(","))
        crf_grid = (None if args.crf_grid is None else
                    [int(c) for c in args.crf_grid.split(",")])
        configs = [config]
        if crf_grid is not None:
            import dataclasses

            kept = crf_grid
            if args.prune_predicted:
                kept = _prune_crf_grid(video, crf_grid, config)
            configs = [dataclasses.replace(config, crf=c) for c in kept]
        results = []
        for point_config in configs:
            journal = args.journal
            if journal is not None and len(configs) > 1:
                journal = f"{journal}.crf{point_config.crf}"
            encoded = cache.encode(video, point_config)
            clean = cache.clean_decode(video, point_config)
            results.append((point_config, quality_sweep(
                encoded, video, clean, None, rates=rates, runs=args.runs,
                rng=np.random.default_rng(args.seed), workers=args.workers,
                timeout=args.timeout, max_retries=args.retries,
                journal=journal, progress=args.progress)))
    if tracer is not None:
        _export_trace(tracer, trace_path, jsonl_path)
    for point_config, result in results:
        print(format_table(
            ("error rate", "mean change dB", "max loss dB", "mean flips",
             "forced %", "runs"),
            [(f"{p.rate:.1e}", f"{p.mean_change_db:.3f}",
              f"{p.max_loss_db:.3f}", f"{p.mean_flips:.1f}",
              f"{100 * p.forced_fraction:.0f}",
              f"{p.runs}" + (f" ({p.failed} failed)" if p.failed else ""))
             for p in result.points],
            title=f"error-rate sweep of {args.input} at CRF "
                  f"{point_config.crf} ({result.targeted_bits} payload "
                  f"bits)"))
        print(format_run_stats(result.stats))
    return 0


def _prune_crf_grid(video, crf_grid, config):
    """Predict each grid point and drop dominated ones (with a table)."""
    from .analysis.predictor import probe_and_predict, prune_dominated

    predictions = probe_and_predict(video, crf_grid, config)
    keep = prune_dominated(predictions)
    print(format_table(
        ("crf", "predicted bits/px", "predicted PSNR dB", "verdict"),
        [(str(p.crf), f"{p.bits_per_pixel:.3f}", f"{p.psnr_db:.2f}",
          "sweep" if k else "skip (dominated)")
         for p, k in zip(predictions, keep)],
        title="predicted operating points (one probe encode)"))
    return [c for c, k in zip(crf_grid, keep) if k]


def _parse_scrub_list(raw: str):
    values = []
    for token in raw.split(","):
        token = token.strip().lower()
        if token in ("none", "off", "never"):
            values.append(None)
        else:
            values.append(float(token))
    return values


def _retention_configs(args: argparse.Namespace):
    """The mitigation grid: the default ladder, or the cross product of
    any explicitly given ``--scrub``/``--retries``/``--conceal``."""
    from .analysis.retention import DEFAULT_CONFIGS, MitigationConfig

    if args.scrub is None and args.retries is None and args.conceal is None:
        return DEFAULT_CONFIGS
    scrubs = _parse_scrub_list(args.scrub) if args.scrub else [None]
    retries = ([int(r) for r in args.retries.split(",")]
               if args.retries else [0])
    conceals = {"off": [False], "on": [True],
                "both": [False, True]}[args.conceal or "off"]
    configs = []
    for scrub in scrubs:
        for retry in retries:
            for conceal in conceals:
                label = "+".join(
                    (["scrub-%gd" % scrub] if scrub is not None else [])
                    + ([f"retry-{retry}"] if retry else [])
                    + (["conceal"] if conceal else [])) or "unmitigated"
                configs.append(MitigationConfig(
                    label=label, scrub_days=scrub, retries=retry,
                    conceal=conceal))
    return tuple(configs)


def _cmd_retention(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_run_stats
    from .analysis.retention import run_retention_sweep
    from .obs import trace as obs_trace

    trace_path = _resolve_trace_path(args)
    tracer = obs_trace.enable() if trace_path else obs_trace.active()
    video = read_raw_video(args.input)
    grid = tuple(float(t) for t in args.t_days.split(","))
    configs = _retention_configs(args)
    with obs_trace.span("repro.retention", input=args.input):
        result = run_retention_sweep(
            video, t_days=grid, configs=configs, scheme=args.scheme,
            config=_encoder_config(args), runs=args.runs,
            rng=np.random.default_rng(args.seed), workers=args.workers,
            timeout=args.timeout, journal=args.journal,
            progress=bool(args.progress))
    if tracer is not None and trace_path:
        _export_trace(tracer, trace_path, None)
    longest = max(grid)
    rows = []
    for config in result.configs:
        for point in result.series(config.label):
            rows.append((config.label, f"{point.t_days:g}",
                         f"{point.psnr_db:.2f}",
                         f"{point.worst_psnr_db:.2f}",
                         f"{point.runs}"
                         + (f" ({point.failed} failed)"
                            if point.failed else "")))
    axis = args.scheme or "Table 1"
    print(format_table(
        ("mitigation", "t (days)", "mean PSNR dB", "worst PSNR dB", "runs"),
        rows,
        title=f"retention sweep of {args.input} ({axis}, "
              f"clean {result.clean_psnr_db:.2f} dB)"))
    counter_rows = [(label, name, str(value))
                    for label, deltas in result.counters.items()
                    for name, value in sorted(deltas.items())]
    if counter_rows:
        print(format_table(("mitigation", "counter", "delta"), counter_rows,
                           title="per-mitigation lifetime counters"))
    for stats in result.stats.values():
        print(format_run_stats(stats))
        break  # one line is representative; configs share the grid
    if args.assert_scrub_benefit:
        scrubbed = [c.label for c in result.configs
                    if c.scrub_days is not None]
        unscrubbed = [c.label for c in result.configs
                      if c.scrub_days is None and not c.retries
                      and not c.conceal]
        if not scrubbed or not unscrubbed:
            print("--assert-scrub-benefit needs both a scrubbed and an "
                  "unmitigated config in the grid")
            return 2
        best_scrubbed = max(result.quality_at(label, longest)
                            for label in scrubbed)
        baseline = max(result.quality_at(label, longest)
                       for label in unscrubbed)
        if not best_scrubbed >= baseline:
            print(f"SCRUB BENEFIT VIOLATED at t={longest:g} days: "
                  f"scrubbed {best_scrubbed:.2f} dB < "
                  f"unscrubbed {baseline:.2f} dB")
            return 1
        print(f"scrub benefit holds at t={longest:g} days: "
              f"{best_scrubbed:.2f} dB (scrubbed) >= "
              f"{baseline:.2f} dB (unscrubbed)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import fuzz_decoder, replay_corpus
    from .obs import trace as obs_trace
    from .runtime import session_cache

    trace_path = _resolve_trace_path(args)
    tracer = obs_trace.enable() if trace_path else obs_trace.active()
    if args.replay:
        report = replay_corpus(args.replay, timeout=args.timeout)
        source = f"corpus {args.replay}"
    else:
        if args.input:
            video = read_raw_video(args.input)
            source = args.input
        else:
            video = synthesize_scene(SceneConfig(
                width=48, height=32, num_frames=4, seed=args.seed))
            source = "synthetic 48x32x4 clip"
        encoded = session_cache().encode(video, _encoder_config(args))
        report = fuzz_decoder(
            encoded, trials=args.trials, seed=args.seed,
            timeout=args.timeout, corpus_dir=args.corpus)
    if tracer is not None and trace_path:
        _export_trace(tracer, trace_path, None)
    print(format_table(
        ("strategy", "trials"),
        sorted(report.by_strategy.items()),
        title=f"decoder fuzz of {source}: {report.trials} trials in "
              f"{report.elapsed_seconds:.1f}s"))
    if report.oversized:
        print(f"{report.oversized} corrupted containers skipped "
              f"(declared geometry over the decode-work cap)")
    if report.ok:
        if args.replay:
            print("corpus replay clean: every historical counterexample "
                  "now decodes within the no-crash contract")
        else:
            print("no-crash contract held: no crashes, no hangs")
        return 0
    corpus_dir = args.replay or args.corpus
    print(f"CONTRACT VIOLATIONS: {len(report.failures)} "
          f"({report.hangs} hangs); counterexamples in {corpus_dir}")
    for failure in report.failures:
        print(f"  trial {failure.trial} [{failure.strategy}] "
              f"{failure.exception}: {failure.message}"
              + (f" -> {failure.corpus_path}" if failure.corpus_path
                 else ""))
    return 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .analysis.scenarios import (ALL_CONTENTS, run_scenario_matrix)
    from .obs import trace as obs_trace

    contents = None
    if args.full:
        contents = ALL_CONTENTS
    if args.contents:
        contents = tuple(c.strip() for c in args.contents.split(","))
    with obs_trace.span("repro.scenarios", seed=args.seed):
        report = run_scenario_matrix(
            contents=contents, seed=args.seed, trials=args.trials,
            journal_dir=args.journal_dir,
            model_checks=not args.no_model_checks)
    rows = []
    for cell in report.cells:
        broken = sorted(k for k, ok in cell.invariants.items() if not ok)
        status = "PASS" if cell.passed else "FAIL"
        if cell.flags:
            status += " *"
        rows.append((cell.content, cell.fault, status,
                     ", ".join(broken) if broken
                     else f"{len(cell.invariants)} invariants held"))
    print(format_table(
        ("content", "fault", "verdict", "detail"), rows,
        title=f"scenario matrix: {len(report.cells)} cells, seed "
              f"{report.seed}"))
    for content, fault, flag in report.flagged:
        print(f"  flag [{content} x {fault}]: {flag}")
    print(f"matrix digest: {report.matrix_digest}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    import json

    from .analysis.scenarios import run_repair_matrix
    from .obs import trace as obs_trace

    replicas_axis = tuple(
        int(r) for r in args.replicas_axis.split(","))
    with obs_trace.span("repro.repair", seed=args.seed):
        report = run_repair_matrix(replicas_axis=replicas_axis,
                                   seed=args.seed, reads=args.reads)
    rows = []
    for cell in report.cells:
        broken = sorted(k for k, ok in cell.invariants.items() if not ok)
        status = "PASS" if cell.passed else "FAIL"
        if cell.flags:
            status += " *"
        rows.append((cell.fault, f"R={cell.replicas}",
                     "repair" if cell.repair else "-", status,
                     ", ".join(broken) if broken
                     else f"{len(cell.invariants)} invariants held"))
    print(format_table(
        ("fault", "replicas", "daemon", "verdict", "detail"), rows,
        title=f"repair matrix: {len(report.cells)} cells, seed "
              f"{report.seed}"))
    print(f"matrix digest: {report.matrix_digest}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


#: The ``serve --demo`` script: one shared object, one denied read,
#: one aged re-read — the operator guide's walkthrough, executable.
_DEMO_SCRIPT = """\
put alice synth:1
put alice synth:2
share alice bob
get alice @1 bob
get alice @2 carol
age 36500
get alice @1
stats
audit
"""


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import shlex

    from .errors import ServiceError
    from .service import Keyring, ServiceFrontend, ShardPool, \
        VideoObjectStore

    if args.demo:
        lines = _DEMO_SCRIPT.splitlines()
    elif args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    pool = ShardPool(count=args.shards, read_retries=args.read_retries)
    store = VideoObjectStore(pool=pool, keyring=Keyring(seed=args.seed),
                             config=_encoder_config(args),
                             replicas=args.replicas)
    frontend = ServiceFrontend(store)
    #: ``@N`` in a script names the id returned by the N-th put (1-based).
    placed_ids: List[str] = []

    def resolve_id(token: str) -> str:
        if token.startswith("@"):
            return placed_ids[int(token[1:]) - 1]
        return token

    def clip_for(token: str):
        if token.startswith("synth:"):
            return synthesize_scene(SceneConfig(
                width=48, height=32, num_frames=4,
                seed=int(token.split(":", 1)[1])))
        return read_raw_video(token)

    async def run_script() -> int:
        status = 0
        await frontend.start()
        op_seq = 0
        for line in lines:
            words = shlex.split(line, comments=True)
            if not words:
                continue
            verb, rest = words[0], words[1:]
            try:
                if verb == "put":
                    object_id = await frontend.ingest(
                        rest[0], clip_for(rest[1]))
                    placed_ids.append(object_id)
                    print(f"put {rest[0]} -> {object_id[:16]} "
                          f"(@{len(placed_ids)})")
                elif verb == "get":
                    reader = rest[2] if len(rest) > 2 else None
                    op_seq += 1
                    result = await frontend.read(
                        rest[0], resolve_id(rest[1]), reader=reader,
                        rng=np.random.default_rng(
                            (args.seed, op_seq)))
                    psnr = ("-" if result.psnr_db is None
                            else f"{result.psnr_db:.2f} dB")
                    print(f"get {result.object_id[:16]} as "
                          f"{result.reader}: {result.outcome} "
                          f"(psnr {psnr})")
                elif verb == "share":
                    store.keyring.add_tenant(rest[0])
                    store.keyring.share(rest[0], rest[1])
                    print(f"shared {rest[0]} -> {rest[1]}")
                elif verb == "retire":
                    store.keyring.retire(rest[0])
                    print(f"retired key of {rest[0]}")
                elif verb == "age":
                    pool.advance_all(float(rest[0]))
                    print(f"aged all shards by {float(rest[0]):g} days")
                elif verb == "stats":
                    print(format_table(
                        ("shard", "health", "age", "reads",
                         "uncorrectable", "blobs", "repairs",
                         "repaired@"),
                        list(pool.health_rows()),
                        title=f"{len(store)} objects on "
                              f"{len(pool)} shards "
                              f"(R={store.replicas})"))
                    print(f"repair backlog: {store.repair.backlog()}")
                elif verb == "repair":
                    rep = await frontend.repair_pass()
                    print(f"repair pass: scanned "
                          f"{rep.scanned_objects}, repaired "
                          f"{rep.objects_repaired} objects "
                          f"({rep.streams_rewritten} streams, "
                          f"{rep.cell_writes} cell writes, "
                          f"{rep.strays_deleted} strays), backlog "
                          f"{rep.backlog}")
                elif verb == "audit":
                    sys.stdout.write(store.audit.to_jsonl())
                elif verb == "quit":
                    break
                else:
                    print(f"unknown command {verb!r} (put/get/share/"
                          f"retire/age/stats/repair/audit/quit)")
                    status = 2
            except ServiceError as exc:
                # Denials, stale keys, refusals: part of the exhibit,
                # not a crash.
                print(f"{verb} failed: {type(exc).__name__}: {exc}")
        await frontend.stop()
        return status

    return asyncio.run(run_script())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .service.loadgen import run_durability_contrast, run_loadgen

    if args.durability_contrast:
        contrast = run_durability_contrast(
            clients=args.clients, ops=args.ops, seed=args.seed,
            read_fraction=args.read_fraction, shards=args.shards,
            read_retries=args.read_retries,
            config=_encoder_config(args))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(contrast, handle, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
        print(format_table(("metric", "R=1 bare", "R=2 + repair"), [
            ("refusal rate",
             f"{contrast['refusal_rate_baseline']:.2%}",
             f"{contrast['refusal_rate_healed']:.2%}"),
            ("run digest", contrast["baseline"]["run_digest"][:16],
             contrast["healed"]["run_digest"][:16]),
        ], title=f"durability contrast, seed {args.seed}"))
        delta = contrast["mean_psnr_delta_db"]
        print(f"mean PSNR delta (healed - bare): "
              f"{'-' if delta is None else f'{delta:+.2f} dB'}")
        print(f"contrast digest: {contrast['contrast_digest']}")
        return 0

    report = run_loadgen(
        clients=args.clients, ops=args.ops, seed=args.seed,
        read_fraction=args.read_fraction, shards=args.shards,
        read_retries=args.read_retries, t_days=args.t_days,
        config=_encoder_config(args), replicas=args.replicas,
        repair=args.repair)
    data = report.to_dict()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    print(format_table(("metric", "value"), [
        ("clients", report.clients),
        ("ops (ingest/read)",
         f"{report.ops} ({report.ingest_count}/{report.read_count})"),
        ("ingest throughput",
         f"{report.ingest_clips_per_second:.2f} clips/s"),
        ("read p50 latency", f"{report.read_p50_ms:.1f} ms"),
        ("read p99 latency", f"{report.read_p99_ms:.1f} ms"),
        ("read outcomes",
         ", ".join(f"{k}={v}"
                   for k, v in sorted(report.outcomes.items()))
         or "-"),
    ], title=f"loadgen seed {report.seed}"))
    if report.degradation:
        print(format_table(
            ("t (days)", "outcomes", "mean PSNR dB", "raw read"),
            [("nominal" if p["t_days"] is None else f"{p['t_days']:g}",
              ", ".join(f"{k}={v}"
                        for k, v in sorted(p["outcomes"].items())),
              "-" if p["psnr_db"] is None else f"{p['psnr_db']:.2f}",
              "ok" if p["raw_ok"]
              else f"corrupt ({p['raw_flipped_bits']} flips)")
             for p in report.degradation],
            title="degradation curve (service reads vs raw device "
                  "read)"))
    if report.degradation_repair:
        print(format_table(
            ("t (days)", "outcomes", "mean PSNR dB"),
            [("nominal" if p["t_days"] is None else f"{p['t_days']:g}",
              ", ".join(f"{k}={v}"
                        for k, v in sorted(p["outcomes"].items())),
              "-" if p["psnr_db"] is None else f"{p['psnr_db']:.2f}")
             for p in report.degradation_repair],
            title="post-repair re-reads (same samples, repaired "
                  "replicas)"))
    print(f"run digest: {report.run_digest}")
    return 0


def _cmd_seek(args: argparse.Namespace) -> int:
    import json

    from .analysis.random_access import run_random_access_sweep

    if args.input:
        video = read_raw_video(args.input)
    else:
        video = synthesize_scene(SceneConfig(
            width=args.width, height=args.height,
            num_frames=args.frames, seed=args.scene_seed))
    result = run_random_access_sweep(
        video,
        gop_sizes=tuple(args.gop_sizes),
        crfs=tuple(args.crfs),
        ages=tuple(None if a <= 0 else a for a in args.ages),
        seeks=args.seeks, seed=args.seed, shards=args.shards,
        seek_cache=args.cache)
    data = result.to_dict()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    rows = []
    for cell in result.cells:
        rows.append((
            str(cell.gop_size), str(cell.crf),
            "nominal" if cell.t_days is None else f"{cell.t_days:g}d",
            f"{cell.compression_ratio:.1f}x",
            "-" if np.isnan(cell.psnr_db) else f"{cell.psnr_db:.2f}",
            ", ".join(f"{k}={v}"
                      for k, v in sorted(cell.outcomes.items())),
            f"{cell.bytes_read_fraction * 100:.0f}%",
            "-" if np.isnan(cell.seek_p50_ms)
            else f"{cell.seek_p50_ms:.1f}",
            "-" if np.isnan(cell.seek_p99_ms)
            else f"{cell.seek_p99_ms:.1f}",
            "-" if np.isnan(cell.speedup)
            else f"{cell.speedup:.1f}x",
        ))
    print(format_table(
        ("gop", "crf", "age", "compr", "PSNR dB", "outcomes",
         "fetched", "p50 ms", "p99 ms", "speedup"),
        rows,
        title=f"random-access seeks ({result.frames} frames "
              f"{result.width}x{result.height}, "
              f"{result.cells[0].seeks} seeks/cell, "
              f"seed {result.seed})"))
    print(f"sweep digest: {result.sweep_digest()}")
    return 0


def _cmd_modes(_args: argparse.Namespace) -> int:
    verdicts = analyze_all_modes()
    print(format_table(
        ("mode", "privacy", "bounded", "transparent", "compatible"),
        [(name, v.privacy, v.bounded_propagation,
          v.approximation_transparent, v.compatible)
         for name, v in verdicts.items()],
        title="AES mode compatibility with approximate storage"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate storage of compressed and encrypted "
                    "videos (ASPLOS 2017 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    synth = commands.add_parser("synth", help="generate a synthetic clip")
    synth.add_argument("output")
    synth.add_argument("--width", type=int, default=128)
    synth.add_argument("--height", type=int, default=96)
    synth.add_argument("--frames", type=int, default=24)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--objects", type=int, default=3)
    synth.add_argument("--noise", type=float, default=0.0)
    synth.set_defaults(func=_cmd_synth)

    encode = commands.add_parser("encode", help="encode a raw clip")
    encode.add_argument("--no-index", action="store_true",
                        help="write the legacy v0 container without "
                             "the seek index")
    encode.add_argument("input")
    encode.add_argument("output")
    _add_encoder_args(encode)
    encode.set_defaults(func=_cmd_encode)

    decode = commands.add_parser("decode", help="decode an encoded video")
    decode.add_argument("input")
    decode.add_argument("output")
    decode.set_defaults(func=_cmd_decode)

    analyze = commands.add_parser("analyze",
                                  help="VideoApp importance report")
    analyze.add_argument("input")
    _add_encoder_args(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    store = commands.add_parser(
        "store", help="simulate the full approximate-storage round trip")
    store.add_argument("input")
    store.add_argument("--output", help="write the read-back clip here")
    store.add_argument("--seed", type=int, default=0)
    store.add_argument("--encrypt", action="store_true")
    store.add_argument("--key", default="000102030405060708090a0b0c0d0e0f")
    store.add_argument("--iv", default="f0e0d0c0b0a090807060504030201000")
    _add_encoder_args(store)
    store.set_defaults(func=_cmd_store)

    sweep = commands.add_parser(
        "sweep", help="Monte Carlo error-rate sweep (trial engine)")
    sweep.add_argument("input")
    sweep.add_argument("--rates", default="1e-6,1e-5,1e-4,1e-3,1e-2",
                       help="comma-separated error rates")
    sweep.add_argument("--runs", type=int, default=8,
                       help="Monte Carlo trials per rate")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default REPRO_NUM_WORKERS; "
                            "0 = serial); results are identical at any "
                            "worker count")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-trial wall-clock budget in seconds "
                            "(default REPRO_TRIAL_TIMEOUT; 0 = none)")
    sweep.add_argument("--retries", type=int, default=None,
                       help="crash-retry budget before a trial is "
                            "quarantined (default REPRO_MAX_RETRIES)")
    sweep.add_argument("--journal", default=None,
                       help="checkpoint file; re-running with the same "
                            "journal resumes an interrupted sweep")
    sweep.add_argument("--trace", default=None,
                       help="write a Chrome-trace JSON of campaign stage "
                            "timings here (default REPRO_TRACE; open in "
                            "chrome://tracing or Perfetto)")
    sweep.add_argument("--trace-jsonl", default=None,
                       help="also write raw span records as JSONL")
    sweep.add_argument("--progress", action="store_true", default=None,
                       help="live terminal status line (default "
                            "REPRO_PROGRESS); observational only")
    sweep.add_argument("--crf-grid", default=None,
                       help="comma-separated CRFs: run the sweep at each "
                            "grid point (overrides --crf)")
    sweep.add_argument("--prune-predicted", action="store_true",
                       help="with --crf-grid: probe-encode once, predict "
                            "each point's rate/quality from motion-search "
                            "statistics, and skip dominated points before "
                            "any campaign runs")
    _add_encoder_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    retention = commands.add_parser(
        "retention",
        help="quality vs retention time under lifetime mitigations")
    retention.add_argument("input")
    retention.add_argument("--t-days", default="90,365,1000,3650",
                           help="comma-separated retention times (days)")
    retention.add_argument("--scrub", default=None,
                           help="comma-separated scrub intervals in days "
                                "('none' = never); with --retries/"
                                "--conceal forms the mitigation grid "
                                "(default: the built-in ladder)")
    retention.add_argument("--retries", default=None,
                           help="comma-separated re-read retry depths for "
                                "detected-uncorrectable blocks")
    retention.add_argument("--conceal", choices=["off", "on", "both"],
                           default=None,
                           help="decoder error concealment axis")
    retention.add_argument("--scheme", default=None,
                           help="store everything under one ECC scheme "
                                "(e.g. BCH-6) instead of Table 1")
    retention.add_argument("--runs", type=int, default=3,
                           help="Monte Carlo trials per (config, t) cell")
    retention.add_argument("--seed", type=int, default=0)
    retention.add_argument("--workers", type=int, default=None,
                           help="worker processes (default "
                                "REPRO_NUM_WORKERS; 0 = serial)")
    retention.add_argument("--timeout", type=float, default=None,
                           help="per-trial wall-clock budget in seconds")
    retention.add_argument("--journal", default=None,
                           help="checkpoint path prefix (one journal per "
                                "mitigation config)")
    retention.add_argument("--trace", default=None,
                           help="write a Chrome-trace JSON here")
    retention.add_argument("--progress", action="store_true", default=None,
                           help="live terminal status line")
    retention.add_argument("--assert-scrub-benefit", action="store_true",
                           help="exit non-zero unless scrubbed quality >= "
                                "unscrubbed at the longest retention "
                                "(CI smoke check)")
    _add_encoder_args(retention)
    retention.set_defaults(func=_cmd_retention)

    fuzz = commands.add_parser(
        "fuzz", help="decoder no-crash fuzz harness")
    fuzz.add_argument("--input", default=None,
                      help="raw clip to encode and corrupt (default: a "
                           "small synthetic clip)")
    fuzz.add_argument("--trials", type=int, default=500)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--timeout", type=float, default=5.0,
                      help="per-trial decode deadline in seconds "
                           "(0 = none)")
    fuzz.add_argument("--corpus", default="fuzz-corpus",
                      help="directory for counterexample bitstreams")
    fuzz.add_argument("--replay", default=None, metavar="CORPUS_DIR",
                      help="replay persisted counterexamples from this "
                           "corpus directory instead of fuzzing; exits "
                           "non-zero if any historical crash reproduces")
    fuzz.add_argument("--trace", default=None,
                      help="write a Chrome-trace JSON of fuzz stage "
                           "timings here (default REPRO_TRACE)")
    _add_encoder_args(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    scenarios = commands.add_parser(
        "scenarios",
        help="chaos x adversarial-content survival matrix")
    scenarios.add_argument("--full", action="store_true",
                           help="run every adversarial content suite "
                                "(default: the quick CI subset)")
    scenarios.add_argument("--contents", default=None,
                           help="comma-separated content names "
                                "(overrides --full)")
    scenarios.add_argument("--trials", type=int, default=4,
                           help="Monte Carlo trials per campaign cell "
                                "(min 3: a chaos victim needs bitwise-"
                                "comparable survivors on both sides)")
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument("--journal-dir", default=None,
                           help="directory for the journal_torn cell's "
                                "journals (default: a temp dir)")
    scenarios.add_argument("--no-model-checks", action="store_true",
                           help="skip the importance-ranking and "
                                "predictor-prune model-gap audits")
    scenarios.add_argument("--json", default=None,
                           help="write the full ScenarioReport here "
                                "(CI compares matrix_digest across runs)")
    scenarios.set_defaults(func=_cmd_scenarios)

    repair = commands.add_parser(
        "repair",
        help="self-healing matrix: fault x replication x repair")
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument("--reads", type=int, default=3,
                        help="reads per object per round")
    repair.add_argument("--replicas-axis", default="1,2",
                        help="comma-separated replica counts to sweep")
    repair.add_argument("--json", default=None,
                        help="write the full RepairMatrixReport here "
                             "(CI compares matrix_digest across runs)")
    repair.set_defaults(func=_cmd_repair)

    serve = commands.add_parser(
        "serve", help="scripted session against the video store service")
    serve.add_argument("--script", default=None,
                       help="command script (default: stdin); verbs: "
                            "put TENANT RAW|synth:SEED, "
                            "get TENANT ID|@N [READER], share OWNER "
                            "READER, retire TENANT, age DAYS, stats, "
                            "repair, audit, quit")
    serve.add_argument("--demo", action="store_true",
                       help="run the built-in demo script instead")
    serve.add_argument("--seed", type=int, default=0,
                       help="keyring + read-rng seed")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard pool width "
                            "(default REPRO_SERVICE_SHARDS)")
    serve.add_argument("--read-retries", type=int, default=None,
                       help="device re-read ladder depth "
                            "(default REPRO_SERVICE_READ_RETRIES)")
    serve.add_argument("--replicas", type=int, default=None,
                       help="copies written per stream "
                            "(default REPRO_SERVICE_REPLICAS)")
    _add_encoder_args(serve)
    serve.set_defaults(func=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="seeded concurrent load + degradation curve (replayable)")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent client coroutines")
    loadgen.add_argument("--ops", type=int, default=12,
                         help="total planned operations")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--read-fraction", type=float, default=0.5,
                         help="probability an op is a read (given an "
                              "earlier ingest exists)")
    loadgen.add_argument("--shards", type=int, default=None,
                         help="shard pool width "
                              "(default REPRO_SERVICE_SHARDS)")
    loadgen.add_argument("--read-retries", type=int, default=None,
                         help="device re-read ladder depth "
                              "(default REPRO_SERVICE_READ_RETRIES)")
    loadgen.add_argument("--t-days", type=float, default=None,
                         help="age every shard to this retention time "
                              "for the mixed phase (default: nominal)")
    loadgen.add_argument("--replicas", type=int, default=None,
                         help="copies written per stream "
                              "(default REPRO_SERVICE_REPLICAS)")
    loadgen.add_argument("--repair", action="store_true",
                         help="run a repair pass after each "
                              "degradation age and re-read the samples")
    loadgen.add_argument("--durability-contrast", action="store_true",
                         help="run the R=1 bare vs R=2+repair contrast "
                              "(same seeds) instead of a single run")
    loadgen.add_argument("--json", default=None,
                         help="write the full report (including the "
                              "run digest) here")
    _add_encoder_args(loadgen)
    loadgen.set_defaults(func=_cmd_loadgen)

    seek = commands.add_parser(
        "seek",
        help="random-access seek exhibit: latency, PSNR-under-damage, "
             "and compression over GOP size x CRF x shard age")
    seek.add_argument("--input", default=None,
                      help="raw REPROYUV clip (default: synthetic)")
    seek.add_argument("--width", type=int, default=64)
    seek.add_argument("--height", type=int, default=48)
    seek.add_argument("--frames", type=int, default=24)
    seek.add_argument("--scene-seed", type=int, default=7,
                      help="synthetic clip seed")
    seek.add_argument("--gop-sizes", type=int, nargs="+",
                      default=[4, 12], help="GOP sizes to sweep")
    seek.add_argument("--crfs", type=int, nargs="+", default=[24, 32],
                      help="CRF values to sweep")
    seek.add_argument("--ages", type=float, nargs="+",
                      default=[0.0, 3650.0],
                      help="shard ages in days (<= 0 means nominal)")
    seek.add_argument("--seeks", type=int, default=24,
                      help="frame reads per cell")
    seek.add_argument("--seed", type=int, default=17,
                      help="sweep seed (schedules + device draws)")
    seek.add_argument("--shards", type=int, default=3)
    seek.add_argument("--cache", type=int, default=16,
                      help="decoded-GOP LRU capacity (0 disables)")
    seek.add_argument("--json", default=None,
                      help="also write the report as JSON")
    seek.set_defaults(func=_cmd_seek)

    modes = commands.add_parser("modes", help="AES mode scorecard")
    modes.set_defaults(func=_cmd_modes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from .runtime import chaos
    policy = chaos.policy_from_env()
    if policy is None:
        return args.func(args)
    # REPRO_CHAOS_* set: run the whole subcommand under the injected
    # fault schedule (any exhibit becomes a chaos experiment).
    chaos.arm(policy)
    try:
        return args.func(args)
    finally:
        chaos.disarm()


if __name__ == "__main__":
    sys.exit(main())
