"""Raw video file I/O.

A minimal headered container for single-channel raw video, analogous to
the Y-only planes of the Xiph ``.y4m`` files the paper uses. The format
is deliberately simple:

``REPROYUV`` magic, then ``width height num_frames fps`` as an ASCII
line, then ``num_frames`` frames of ``width * height`` bytes each,
row-major.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..errors import VideoFormatError
from .frame import VideoSequence

_MAGIC = b"REPROYUV"

PathLike = Union[str, os.PathLike]


def write_raw_video(path: PathLike, video: VideoSequence) -> None:
    """Serialize ``video`` to ``path`` in the REPROYUV container."""
    if len(video) == 0:
        raise VideoFormatError("refusing to write an empty sequence")
    header = f"{video.width} {video.height} {len(video)} {video.fps}\n"
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(header.encode("ascii"))
        for frame in video:
            f.write(frame.tobytes())


def read_raw_video(path: PathLike) -> VideoSequence:
    """Load a REPROYUV file written by :func:`write_raw_video`."""
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise VideoFormatError(f"{path}: not a REPROYUV file")
        header = f.readline().decode("ascii", errors="replace").split()
        if len(header) != 4:
            raise VideoFormatError(f"{path}: malformed header {header}")
        try:
            width, height, num_frames = (int(x) for x in header[:3])
            fps = float(header[3])
        except ValueError as exc:
            raise VideoFormatError(f"{path}: malformed header {header}") from exc
        frame_bytes = width * height
        frames = []
        for index in range(num_frames):
            buf = f.read(frame_bytes)
            if len(buf) != frame_bytes:
                raise VideoFormatError(
                    f"{path}: truncated at frame {index} "
                    f"({len(buf)}/{frame_bytes} bytes)"
                )
            frames.append(
                np.frombuffer(buf, dtype=np.uint8).reshape(height, width)
            )
    return VideoSequence(frames, fps=fps)
