"""Raw video containers.

The paper's pipeline operates on raw (uncompressed) video as encoder
input and decoder output. We model video as a sequence of single-channel
(luma) frames, which is where essentially all of H.264's prediction
machinery — and therefore all of the paper's error-propagation analysis —
lives. Frames are numpy ``uint8`` arrays of shape ``(height, width)``.

Both dimensions must be multiples of the macroblock size (16) so that a
frame tiles exactly into macroblocks, as the encoder requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from ..errors import VideoFormatError

#: Side length, in pixels, of an H.264 macroblock.
MACROBLOCK_SIZE = 16


def validate_frame(pixels: np.ndarray) -> np.ndarray:
    """Validate and normalize one raw frame.

    Returns a C-contiguous ``uint8`` copy-free view when possible.
    Raises :class:`VideoFormatError` for wrong rank, dtype that cannot
    hold 0..255 content, or dimensions not divisible by 16.
    """
    arr = np.asarray(pixels)
    if arr.ndim != 2:
        raise VideoFormatError(
            f"frame must be 2-D (luma only), got shape {arr.shape}"
        )
    if arr.dtype != np.uint8:
        if not np.issubdtype(arr.dtype, np.integer):
            raise VideoFormatError(f"frame dtype must be integer, got {arr.dtype}")
        if arr.min(initial=0) < 0 or arr.max(initial=0) > 255:
            raise VideoFormatError("frame values must fit in 0..255")
        arr = arr.astype(np.uint8)
    height, width = arr.shape
    if height % MACROBLOCK_SIZE or width % MACROBLOCK_SIZE:
        raise VideoFormatError(
            f"frame dimensions {width}x{height} must be multiples of "
            f"{MACROBLOCK_SIZE}"
        )
    if height == 0 or width == 0:
        raise VideoFormatError("frame must be non-empty")
    return np.ascontiguousarray(arr)


@dataclass
class VideoSequence:
    """An ordered collection of equally sized raw luma frames.

    Attributes:
        frames: list of ``(H, W) uint8`` arrays, all the same shape.
        fps: nominal frame rate; informational only (the codec is
            rate-agnostic) but carried through for reporting.
    """

    frames: List[np.ndarray] = field(default_factory=list)
    fps: float = 30.0

    def __post_init__(self) -> None:
        self.frames = [validate_frame(f) for f in self.frames]
        shapes = {f.shape for f in self.frames}
        if len(shapes) > 1:
            raise VideoFormatError(f"all frames must share one shape, got {shapes}")
        if self.fps <= 0:
            raise VideoFormatError(f"fps must be positive, got {self.fps}")

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.frames[index]

    # -- geometry ------------------------------------------------------

    @property
    def height(self) -> int:
        self._require_nonempty()
        return self.frames[0].shape[0]

    @property
    def width(self) -> int:
        self._require_nonempty()
        return self.frames[0].shape[1]

    @property
    def mb_rows(self) -> int:
        """Number of macroblock rows per frame."""
        return self.height // MACROBLOCK_SIZE

    @property
    def mb_cols(self) -> int:
        """Number of macroblock columns per frame."""
        return self.width // MACROBLOCK_SIZE

    @property
    def macroblocks_per_frame(self) -> int:
        return self.mb_rows * self.mb_cols

    @property
    def total_pixels(self) -> int:
        """Total number of pixels across all frames (density denominator)."""
        return len(self.frames) * self.height * self.width

    def _require_nonempty(self) -> None:
        if not self.frames:
            raise VideoFormatError("sequence is empty")

    # -- convenience ----------------------------------------------------

    def copy(self) -> "VideoSequence":
        return VideoSequence([f.copy() for f in self.frames], fps=self.fps)

    def subsequence(self, start: int, stop: int) -> "VideoSequence":
        """Frames ``start:stop`` as a new sequence (views, not copies)."""
        return VideoSequence(list(self.frames[start:stop]), fps=self.fps)

    @staticmethod
    def from_array(stack: np.ndarray, fps: float = 30.0) -> "VideoSequence":
        """Build a sequence from a ``(num_frames, H, W)`` array."""
        stack = np.asarray(stack)
        if stack.ndim != 3:
            raise VideoFormatError(f"expected (N, H, W) array, got {stack.shape}")
        return VideoSequence([stack[i] for i in range(stack.shape[0])], fps=fps)

    def to_array(self) -> np.ndarray:
        """Stack all frames into a ``(num_frames, H, W) uint8`` array."""
        self._require_nonempty()
        return np.stack(self.frames, axis=0)


def sequences_comparable(a: VideoSequence, b: VideoSequence) -> bool:
    """True when two sequences can be compared frame by frame."""
    return (
        len(a) == len(b)
        and len(a) > 0
        and a.frames[0].shape == b.frames[0].shape
    )


def require_comparable(a: VideoSequence, b: VideoSequence) -> None:
    """Raise :class:`VideoFormatError` unless ``a`` and ``b`` line up."""
    if not sequences_comparable(a, b):
        raise VideoFormatError(
            "sequences are not comparable: "
            f"lengths {len(a)} vs {len(b)}, shapes "
            f"{a.frames[0].shape if len(a) else None} vs "
            f"{b.frames[0].shape if len(b) else None}"
        )


def frames_equal(a: VideoSequence, b: VideoSequence) -> bool:
    """Bit-exact equality of two sequences."""
    return sequences_comparable(a, b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )
