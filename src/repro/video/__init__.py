"""Raw video substrate: containers, synthesis, and file I/O."""

from .adversarial import (
    ADVERSARIAL_PRESETS,
    AdversarialConfig,
    make_adversarial_suite,
)
from .frame import (
    MACROBLOCK_SIZE,
    VideoSequence,
    frames_equal,
    require_comparable,
    sequences_comparable,
    validate_frame,
)
from .io import read_raw_video, write_raw_video
from .y4m import read_y4m, write_y4m
from .synthesis import (
    MovingObject,
    SceneConfig,
    SUITE_PRESETS,
    make_suite,
    synthesize_scene,
    textured_background,
)

__all__ = [
    "ADVERSARIAL_PRESETS",
    "AdversarialConfig",
    "MACROBLOCK_SIZE",
    "MovingObject",
    "make_adversarial_suite",
    "SceneConfig",
    "SUITE_PRESETS",
    "VideoSequence",
    "frames_equal",
    "make_suite",
    "read_raw_video",
    "read_y4m",
    "require_comparable",
    "sequences_comparable",
    "synthesize_scene",
    "textured_background",
    "validate_frame",
    "write_raw_video",
    "write_y4m",
]
