"""Synthetic raw video generation.

The paper evaluates on 14 raw Xiph.Org sequences (720p, 500-600 frames).
Raw footage is not available offline, so this module synthesizes scenes
with the properties the experiments actually rely on:

* spatial redundancy (smooth regions, textures) so intra prediction and
  the transform earn their keep;
* temporal redundancy with genuine motion (translating objects, global
  pan) so motion estimation finds good matches and compensation creates
  the cross-frame dependencies VideoApp tracks;
* detail variation so different macroblocks carry different bit counts;
* optional sensor noise and scene cuts.

Each generator is deterministic given a seed. ``make_suite`` produces a
small battery of differently behaved sequences standing in for the Xiph
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import VideoFormatError
from .frame import VideoSequence


def _smooth_noise(rng: np.random.Generator, height: int, width: int,
                  scale: int) -> np.ndarray:
    """Band-limited noise in [0, 1]: coarse random grid, bilinear upsample."""
    if scale < 1:
        raise VideoFormatError(f"noise scale must be >= 1, got {scale}")
    coarse_h = max(2, height // scale + 1)
    coarse_w = max(2, width // scale + 1)
    coarse = rng.random((coarse_h, coarse_w))
    # Bilinear upsample to (height, width) using np.interp on each axis.
    row_pos = np.linspace(0.0, coarse_h - 1.0, height)
    col_pos = np.linspace(0.0, coarse_w - 1.0, width)
    rows = np.arange(coarse_h, dtype=float)
    cols = np.arange(coarse_w, dtype=float)
    tmp = np.empty((height, coarse_w))
    for j in range(coarse_w):
        tmp[:, j] = np.interp(row_pos, rows, coarse[:, j])
    out = np.empty((height, width))
    for i in range(height):
        out[i, :] = np.interp(col_pos, cols, tmp[i, :])
    return out


def textured_background(height: int, width: int, seed: int = 0,
                        base_level: float = 110.0,
                        contrast: float = 70.0,
                        detail: float = 18.0) -> np.ndarray:
    """A static background: smooth large-scale structure + fine texture.

    Returns a float array in [0, 255] (callers quantize after composing
    moving elements on top, to avoid double rounding).
    """
    rng = np.random.default_rng(seed)
    coarse = _smooth_noise(rng, height, width, scale=max(height, width) // 4)
    fine = _smooth_noise(rng, height, width, scale=6)
    img = base_level + contrast * (coarse - 0.5) + detail * (fine - 0.5)
    return np.clip(img, 0.0, 255.0)


@dataclass
class MovingObject:
    """A rigid textured patch translating at constant velocity.

    Positions are float; the object is rendered at the nearest integer
    location each frame (integer-pel motion keeps the pure-Python motion
    search honest without sub-pel interpolation).
    """

    x: float
    y: float
    width: int
    height: int
    vx: float
    vy: float
    brightness: float = 200.0
    texture_seed: int = 1
    shape: str = "rect"  # "rect" or "disc"

    _texture: Optional[np.ndarray] = field(default=None, repr=False)

    def texture(self) -> np.ndarray:
        if self._texture is None:
            rng = np.random.default_rng(self.texture_seed)
            tex = _smooth_noise(rng, self.height, self.width, scale=4)
            self._texture = np.clip(
                self.brightness + 45.0 * (tex - 0.5), 0.0, 255.0
            )
        return self._texture

    def mask(self) -> np.ndarray:
        if self.shape == "rect":
            return np.ones((self.height, self.width), dtype=bool)
        if self.shape == "disc":
            yy, xx = np.mgrid[0:self.height, 0:self.width]
            cy, cx = (self.height - 1) / 2.0, (self.width - 1) / 2.0
            ry, rx = self.height / 2.0, self.width / 2.0
            return ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
        raise VideoFormatError(f"unknown object shape {self.shape!r}")

    def step(self, frame_height: int, frame_width: int) -> None:
        """Advance one frame, bouncing off frame edges."""
        self.x += self.vx
        self.y += self.vy
        if self.x < 0 or self.x + self.width > frame_width:
            self.vx = -self.vx
            self.x = min(max(self.x, 0.0), float(frame_width - self.width))
        if self.y < 0 or self.y + self.height > frame_height:
            self.vy = -self.vy
            self.y = min(max(self.y, 0.0), float(frame_height - self.height))

    def render(self, canvas: np.ndarray) -> None:
        """Composite the object onto ``canvas`` (float, in place)."""
        top = int(round(self.y))
        left = int(round(self.x))
        top = min(max(top, 0), canvas.shape[0] - self.height)
        left = min(max(left, 0), canvas.shape[1] - self.width)
        region = canvas[top:top + self.height, left:left + self.width]
        mask = self.mask()
        region[mask] = self.texture()[mask]


@dataclass
class SceneConfig:
    """Parameters for :func:`synthesize_scene`."""

    width: int = 128
    height: int = 96
    num_frames: int = 30
    fps: float = 30.0
    seed: int = 0
    num_objects: int = 3
    pan_speed: Tuple[float, float] = (0.0, 0.0)  # pixels/frame (dx, dy)
    noise_sigma: float = 0.0
    cut_every: Optional[int] = None  # scene cut period in frames


def _make_objects(cfg: SceneConfig, rng: np.random.Generator
                  ) -> List[MovingObject]:
    objects = []
    for i in range(cfg.num_objects):
        obj_w = int(rng.integers(16, max(17, cfg.width // 3)))
        obj_h = int(rng.integers(16, max(17, cfg.height // 3)))
        objects.append(MovingObject(
            x=float(rng.integers(0, max(1, cfg.width - obj_w))),
            y=float(rng.integers(0, max(1, cfg.height - obj_h))),
            width=obj_w,
            height=obj_h,
            vx=float(rng.uniform(-4.0, 4.0)),
            vy=float(rng.uniform(-3.0, 3.0)),
            brightness=float(rng.uniform(150.0, 235.0)),
            texture_seed=cfg.seed * 1000 + i,
            shape="disc" if i % 2 else "rect",
        ))
    return objects


def synthesize_scene(cfg: SceneConfig) -> VideoSequence:
    """Generate one deterministic synthetic sequence."""
    if cfg.num_frames <= 0:
        raise VideoFormatError("num_frames must be positive")
    rng = np.random.default_rng(cfg.seed)
    # An oversized background lets the camera pan without exposing edges.
    pad_x = int(math.ceil(abs(cfg.pan_speed[0]) * cfg.num_frames)) + 1
    pad_y = int(math.ceil(abs(cfg.pan_speed[1]) * cfg.num_frames)) + 1
    bg = textured_background(cfg.height + 2 * pad_y, cfg.width + 2 * pad_x,
                             seed=cfg.seed)
    objects = _make_objects(cfg, rng)

    frames = []
    cam_x, cam_y = float(pad_x), float(pad_y)
    for t in range(cfg.num_frames):
        if cfg.cut_every and t > 0 and t % cfg.cut_every == 0:
            # Scene cut: new background and objects.
            bg = textured_background(bg.shape[0], bg.shape[1],
                                     seed=cfg.seed + 7919 * t)
            objects = _make_objects(cfg, rng)
        ix = min(max(int(round(cam_x)), 0), bg.shape[1] - cfg.width)
        iy = min(max(int(round(cam_y)), 0), bg.shape[0] - cfg.height)
        canvas = bg[iy:iy + cfg.height, ix:ix + cfg.width].copy()
        for obj in objects:
            obj.render(canvas)
            obj.step(cfg.height, cfg.width)
        if cfg.noise_sigma > 0:
            canvas = canvas + rng.normal(0.0, cfg.noise_sigma, canvas.shape)
        frames.append(np.clip(np.rint(canvas), 0, 255).astype(np.uint8))
        cam_x += cfg.pan_speed[0]
        cam_y += cfg.pan_speed[1]
    return VideoSequence(frames, fps=cfg.fps)


#: Named presets standing in for the Xiph suite's variety of content.
SUITE_PRESETS: Tuple[Tuple[str, SceneConfig], ...] = (
    ("static_texture", SceneConfig(seed=11, num_objects=0)),
    ("slow_objects", SceneConfig(seed=23, num_objects=2)),
    ("busy_objects", SceneConfig(seed=37, num_objects=5)),
    ("camera_pan", SceneConfig(seed=41, num_objects=2, pan_speed=(1.5, 0.5))),
    ("noisy_sensor", SceneConfig(seed=53, num_objects=3, noise_sigma=2.0)),
    ("scene_cuts", SceneConfig(seed=67, num_objects=3, cut_every=12)),
)


def make_suite(width: int = 128, height: int = 96, num_frames: int = 30,
               names: Optional[Sequence[str]] = None
               ) -> List[Tuple[str, VideoSequence]]:
    """Build the evaluation suite (name, sequence) at a common geometry."""
    chosen = dict(SUITE_PRESETS)
    if names is None:
        names = [name for name, _ in SUITE_PRESETS]
    suite = []
    for name in names:
        if name not in chosen:
            raise VideoFormatError(f"unknown preset {name!r}; "
                                   f"known: {sorted(chosen)}")
        base = chosen[name]
        cfg = SceneConfig(
            width=width, height=height, num_frames=num_frames,
            fps=base.fps, seed=base.seed, num_objects=base.num_objects,
            pan_speed=base.pan_speed, noise_sigma=base.noise_sigma,
            cut_every=base.cut_every,
        )
        suite.append((name, synthesize_scene(cfg)))
    return suite
