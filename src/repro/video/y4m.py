"""YUV4MPEG2 (.y4m) interchange support.

The paper's evaluation inputs are Xiph.Org raw sequences distributed as
``.y4m`` files. This module reads and writes that format so real
footage can be fed to the pipeline: reading extracts the luma plane
(the codec is luma-only; chroma planes are skipped), writing emits
mono (``C400``) files that standard tools accept.

Supported colorspaces on read: C420 (+ variants C420jpeg/C420paldv/
C420mpeg2), C422, C444, and C400 (mono).
"""

from __future__ import annotations

import os
from typing import Tuple, Union

import numpy as np

from ..errors import VideoFormatError
from .frame import MACROBLOCK_SIZE, VideoSequence

PathLike = Union[str, os.PathLike]

_MAGIC = b"YUV4MPEG2"

#: Chroma plane size divisors (width_div, height_div) per colorspace.
_CHROMA_LAYOUT = {
    "C420": (2, 2),
    "C420jpeg": (2, 2),
    "C420paldv": (2, 2),
    "C420mpeg2": (2, 2),
    "C422": (2, 1),
    "C444": (1, 1),
    "C400": (None, None),  # no chroma planes
    "Cmono": (None, None),
}


def _parse_ratio(token: str) -> float:
    numerator, _, denominator = token.partition(":")
    try:
        num = int(numerator)
        den = int(denominator) if denominator else 1
    except ValueError as exc:
        raise VideoFormatError(f"bad Y4M ratio {token!r}") from exc
    if den == 0:
        raise VideoFormatError(f"bad Y4M ratio {token!r}")
    return num / den


def _parse_header(line: bytes) -> Tuple[int, int, float, str]:
    tokens = line.decode("ascii", errors="replace").split()
    if not tokens or tokens[0] != _MAGIC.decode("ascii"):
        raise VideoFormatError("not a YUV4MPEG2 stream")
    width = height = 0
    fps = 30.0
    colorspace = "C420"
    for token in tokens[1:]:
        if token.startswith("W"):
            width = int(token[1:])
        elif token.startswith("H"):
            height = int(token[1:])
        elif token.startswith("F"):
            fps = _parse_ratio(token[1:])
        elif token.startswith("C"):
            colorspace = token
        # A (aspect), I (interlace), X (extensions) are ignored.
    if width <= 0 or height <= 0:
        raise VideoFormatError(f"Y4M header lacks geometry: {tokens}")
    if colorspace not in _CHROMA_LAYOUT:
        raise VideoFormatError(f"unsupported Y4M colorspace {colorspace}")
    return width, height, fps, colorspace


def read_y4m(path: PathLike, crop_to_macroblocks: bool = True
             ) -> VideoSequence:
    """Load the luma plane of a .y4m file as a VideoSequence.

    Dimensions that are not multiples of 16 are bottom/right-cropped to
    the macroblock grid when ``crop_to_macroblocks`` is set (the Xiph
    720p sequences are already aligned); otherwise such files are
    rejected.
    """
    with open(path, "rb") as handle:
        header = handle.readline().rstrip(b"\n")
        width, height, fps, colorspace = _parse_header(header)
        chroma = _CHROMA_LAYOUT[colorspace]
        luma_bytes = width * height
        if chroma[0] is None:
            chroma_bytes = 0
        else:
            chroma_bytes = 2 * ((width // chroma[0])
                                * (height // chroma[1]))
        frames = []
        while True:
            frame_line = handle.readline()
            if not frame_line:
                break
            if not frame_line.startswith(b"FRAME"):
                raise VideoFormatError(
                    f"{path}: expected FRAME marker, got {frame_line[:20]!r}"
                )
            luma = handle.read(luma_bytes)
            if len(luma) != luma_bytes:
                raise VideoFormatError(f"{path}: truncated luma plane")
            if chroma_bytes:
                skipped = handle.read(chroma_bytes)
                if len(skipped) != chroma_bytes:
                    raise VideoFormatError(f"{path}: truncated chroma")
            frames.append(np.frombuffer(luma, dtype=np.uint8)
                          .reshape(height, width))
    if not frames:
        raise VideoFormatError(f"{path}: no frames")
    if width % MACROBLOCK_SIZE or height % MACROBLOCK_SIZE:
        if not crop_to_macroblocks:
            raise VideoFormatError(
                f"{path}: {width}x{height} not macroblock-aligned"
            )
        cropped_h = height - height % MACROBLOCK_SIZE
        cropped_w = width - width % MACROBLOCK_SIZE
        if cropped_h == 0 or cropped_w == 0:
            raise VideoFormatError(f"{path}: too small to crop to 16x16")
        frames = [frame[:cropped_h, :cropped_w] for frame in frames]
    return VideoSequence(list(frames), fps=fps)


def write_y4m(path: PathLike, video: VideoSequence) -> None:
    """Write a luma-only (C400) .y4m file."""
    if len(video) == 0:
        raise VideoFormatError("refusing to write an empty sequence")
    fps_num = int(round(video.fps * 1000))
    header = (f"YUV4MPEG2 W{video.width} H{video.height} "
              f"F{fps_num}:1000 Ip A1:1 C400\n")
    with open(path, "wb") as handle:
        handle.write(header.encode("ascii"))
        for frame in video:
            handle.write(b"FRAME\n")
            handle.write(frame.tobytes())
