"""Adversarial content: sequences built to break the codec's assumptions.

Every exhibit so far runs on the friendly :mod:`~repro.video.synthesis`
suite — smooth textures, coherent motion, the content the encoder's
heuristics (and the PR 6 motion-stats predictor) were tuned on. This
module generates the opposite on purpose:

* **scene-cut storms** — a fresh, unrelated scene every GOP-fraction,
  so temporal prediction finds nothing to reference;
* **timeline shuffles and reversals** — compressure's trick: frames of
  a coherent scene re-ordered so motion estimation chases matches that
  moved "backwards" or teleported;
* **flicker and noise bursts** — global luminance oscillation and
  frames of near-iid sensor noise, starving both intra and inter
  prediction;
* **high-frequency texture** — checkerboard-plus-noise detail at the
  transform's Nyquist limit, defeating energy compaction;
* **hard pans with occlusion** — camera motion beyond the search range
  while a large object sweeps across, forcing disocclusion errors.

Each generator is a drop-in :class:`~repro.video.frame.VideoSequence`
factory, deterministic given its config, and the presets/suite helpers
mirror :data:`~repro.video.synthesis.SUITE_PRESETS` /
:func:`~repro.video.synthesis.make_suite` so any exhibit can swap the
friendly suite for the hostile one. The scenario matrix
(:mod:`repro.analysis.scenarios`) crosses these with injected
infrastructure faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import VideoFormatError
from .frame import VideoSequence
from .synthesis import (
    SceneConfig,
    _smooth_noise,
    synthesize_scene,
    textured_background,
)


@dataclass(frozen=True)
class AdversarialConfig:
    """Common knobs for every adversarial generator.

    Geometry defaults match the friendly suite; the scenario matrix
    shrinks it for quick runs. ``seed`` fully determines the output.
    """

    width: int = 128
    height: int = 96
    num_frames: int = 30
    fps: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise VideoFormatError("num_frames must be positive")
        if self.width <= 0 or self.height <= 0:
            raise VideoFormatError(
                f"empty geometry {self.width}x{self.height}")


def _quantize(frames: List[np.ndarray], fps: float) -> VideoSequence:
    stack = [np.clip(np.rint(frame), 0, 255).astype(np.uint8)
             for frame in frames]
    return VideoSequence(stack, fps=fps)


def _base_scene(cfg: AdversarialConfig, *, num_objects: int = 2,
                pan_speed: Tuple[float, float] = (0.0, 0.0),
                seed_offset: int = 0) -> VideoSequence:
    return synthesize_scene(SceneConfig(
        width=cfg.width, height=cfg.height, num_frames=cfg.num_frames,
        fps=cfg.fps, seed=cfg.seed + seed_offset,
        num_objects=num_objects, pan_speed=pan_speed))


def scene_cut_storm(cfg: AdversarialConfig,
                    cut_every: int = 2) -> VideoSequence:
    """A completely new scene every ``cut_every`` frames.

    Far denser than any GOP, so nearly every inter frame faces a
    reference it shares nothing with — motion estimation degenerates to
    intra-by-accident and the importance analysis sees dependency
    chains that keep being severed.
    """
    if cut_every < 1:
        raise VideoFormatError(f"cut_every must be >= 1, got {cut_every}")
    frames: List[np.ndarray] = []
    for t in range(cfg.num_frames):
        scene_index = t // cut_every
        frames.append(textured_background(
            cfg.height, cfg.width, seed=cfg.seed + 7919 * scene_index,
            contrast=90.0, detail=30.0))
    return _quantize(frames, cfg.fps)


def timeline_shuffle(cfg: AdversarialConfig) -> VideoSequence:
    """A coherent scene with its frames deterministically shuffled.

    The compressure manipulation: every frame exists somewhere in the
    timeline, but temporal neighbors are unrelated, so motion vectors
    that assume smooth displacement point at garbage.
    """
    base = _base_scene(cfg, num_objects=3)
    rng = np.random.default_rng(cfg.seed + 1)
    order = rng.permutation(len(base))
    return VideoSequence([base[int(i)].copy() for i in order], fps=cfg.fps)


def timeline_reverse(cfg: AdversarialConfig) -> VideoSequence:
    """A coherent scene played backwards.

    Motion is exactly inverted relative to what forward prediction
    models; a milder cousin of :func:`timeline_shuffle` that keeps
    frame-to-frame deltas small but consistently wrong-signed.
    """
    base = _base_scene(cfg, num_objects=3)
    return VideoSequence([base[i].copy()
                          for i in range(len(base) - 1, -1, -1)],
                         fps=cfg.fps)


def flicker(cfg: AdversarialConfig, period: int = 2,
            gain: float = 0.45) -> VideoSequence:
    """Global luminance flicker over a coherent scene.

    Every ``period`` frames the whole frame's brightness swings by
    ``±gain``; co-located blocks differ everywhere at once, so inter
    prediction pays a full-frame residual it never amortizes.
    """
    if period < 1:
        raise VideoFormatError(f"period must be >= 1, got {period}")
    if not 0.0 <= gain < 1.0:
        raise VideoFormatError(f"gain must be in [0, 1), got {gain}")
    base = _base_scene(cfg, num_objects=2)
    frames = []
    for t in range(len(base)):
        sign = 1.0 if (t // period) % 2 == 0 else -1.0
        frames.append(base[t].astype(np.float64) * (1.0 + sign * gain))
    return _quantize(frames, cfg.fps)


def noise_burst(cfg: AdversarialConfig, burst_every: int = 6,
                burst_len: int = 2, sigma: float = 60.0) -> VideoSequence:
    """A coherent scene interrupted by bursts of heavy sensor noise.

    Burst frames are nearly incompressible and poison any reference
    chain that crosses them; the frames between bursts stay friendly,
    so rate control and the predictor see violently bimodal content.
    """
    if burst_every < 1 or burst_len < 1:
        raise VideoFormatError("burst_every and burst_len must be >= 1")
    base = _base_scene(cfg, num_objects=2)
    rng = np.random.default_rng(cfg.seed + 2)
    frames = []
    for t in range(len(base)):
        frame = base[t].astype(np.float64)
        if (t % burst_every) < burst_len:
            frame = frame + rng.normal(0.0, sigma, frame.shape)
        frames.append(frame)
    return _quantize(frames, cfg.fps)


def high_freq_texture(cfg: AdversarialConfig,
                      drift: int = 1) -> VideoSequence:
    """Checkerboard-plus-noise detail at the transform's limit.

    A pixel-period checkerboard concentrates energy in the highest
    transform frequency (the one quantized hardest), and the added
    per-frame noise denies both intra prediction and clean temporal
    matches; ``drift`` shifts the pattern per frame so motion search
    must track a texture with no stable landmarks.
    """
    rng = np.random.default_rng(cfg.seed + 3)
    yy, xx = np.mgrid[0:cfg.height, 0:cfg.width]
    frames = []
    for t in range(cfg.num_frames):
        checker = ((yy + xx + t * drift) % 2).astype(np.float64)
        frame = (60.0 + 130.0 * checker
                 + rng.normal(0.0, 12.0, (cfg.height, cfg.width)))
        frames.append(frame)
    return _quantize(frames, cfg.fps)


def hard_pan_occlusion(cfg: AdversarialConfig,
                       pan_per_frame: Optional[float] = None
                       ) -> VideoSequence:
    """A pan beyond the search range while a large occluder crosses.

    ``pan_per_frame`` defaults to 1.5x the encoder's default search
    range, so the true global motion is unfindable; the occluding bar
    (a third of the frame wide, moving against the pan) uncovers fresh
    background every frame that no reference contains.
    """
    if pan_per_frame is None:
        pan_per_frame = 12.0  # 1.5x the default search_range of 8
    span = int(np.ceil(abs(pan_per_frame) * cfg.num_frames)) + cfg.width
    bg = textured_background(cfg.height, span, seed=cfg.seed + 4,
                             contrast=90.0, detail=25.0)
    rng = np.random.default_rng(cfg.seed + 5)
    bar_w = max(4, cfg.width // 3)
    bar_tex = np.clip(
        30.0 + 40.0 * _smooth_noise(rng, cfg.height, bar_w, scale=3),
        0.0, 255.0)
    frames = []
    for t in range(cfg.num_frames):
        x0 = min(int(round(t * abs(pan_per_frame))), span - cfg.width)
        canvas = bg[:, x0:x0 + cfg.width].copy()
        # The occluder sweeps the other way: disocclusion on both edges.
        bar_x = int(round((cfg.width - bar_w)
                          * (1.0 - (t / max(1, cfg.num_frames - 1)))))
        canvas[:, bar_x:bar_x + bar_w] = bar_tex
        frames.append(canvas)
    return _quantize(frames, cfg.fps)


#: Named adversarial presets, mirroring ``SUITE_PRESETS``' shape: each
#: entry maps a name to a generator taking one ``AdversarialConfig``.
ADVERSARIAL_PRESETS: Tuple[Tuple[str, Callable[[AdversarialConfig],
                                               VideoSequence]], ...] = (
    ("scene_cut_storm", scene_cut_storm),
    ("timeline_shuffle", timeline_shuffle),
    ("timeline_reverse", timeline_reverse),
    ("flicker", flicker),
    ("noise_burst", noise_burst),
    ("high_freq_texture", high_freq_texture),
    ("hard_pan_occlusion", hard_pan_occlusion),
)


def make_adversarial_suite(width: int = 128, height: int = 96,
                           num_frames: int = 30,
                           names: Optional[Sequence[str]] = None,
                           seed: int = 0
                           ) -> List[Tuple[str, VideoSequence]]:
    """Build the hostile evaluation suite at a common geometry.

    Drop-in alongside :func:`~repro.video.synthesis.make_suite`: same
    return shape, deterministic given ``seed``, unknown names rejected
    with the list of known ones.
    """
    generators: Dict[str, Callable[[AdversarialConfig], VideoSequence]] = \
        dict(ADVERSARIAL_PRESETS)
    if names is None:
        names = [name for name, _ in ADVERSARIAL_PRESETS]
    suite = []
    for name in names:
        if name not in generators:
            raise VideoFormatError(f"unknown adversarial preset {name!r}; "
                                   f"known: {sorted(generators)}")
        cfg = AdversarialConfig(width=width, height=height,
                                num_frames=num_frames, seed=seed)
        suite.append((name, generators[name](cfg)))
    return suite
