#!/usr/bin/env python
"""Error anatomy: watch a single bit flip ripple through a video.

Reproduces the paper's Section 3 study interactively:

* flips one bit early vs late in a P-frame's payload and prints ASCII
  damage maps of the affected frame (coding-error propagation,
  Figure 2c) and of a later frame (compensation-error propagation);
* prints the VideoApp importance map of the same frame, showing the
  strictly decreasing scan-order structure that the damage follows.

Run:  python examples/error_anatomy.py
"""

from repro.analysis import importance_map, macroblock_error_map
from repro.codec import Decoder, Encoder, EncoderConfig
from repro.core import compute_importance
from repro.storage import inject_single_flip
from repro.video import SceneConfig, synthesize_scene


def main() -> None:
    video = synthesize_scene(SceneConfig(width=160, height=96,
                                         num_frames=12, seed=9,
                                         num_objects=3))
    encoded = Encoder(EncoderConfig(crf=24, gop_size=12)).encode(video)
    decoder = Decoder()
    clean = decoder.decode(encoded)
    payloads = encoded.frame_payloads()

    target = encoded.trace.frames[2]  # a P-frame
    display = target.display_index
    # Skip the range coder's inert first byte (bits 0-7 are the spurious
    # initial cache byte) and flip early in the first MB's data.
    first_mb = target.macroblocks[0]
    early_bit = max(first_mb.bit_start, 8) + 4
    late_bit = max(target.payload_bits - 16, 0)
    for label, bit in (("early (first MB)", early_bit),
                       ("late (last MB)", late_bit)):
        damaged = decoder.decode(encoded.with_payloads(
            inject_single_flip(payloads, target.coded_index, bit)))
        print(f"--- one bit flipped {label} in coded frame "
              f"{target.coded_index} ---")
        print("damage in the flipped frame (coding errors, Figure 2c):")
        print(macroblock_error_map(clean[display], damaged[display]))
        later = min(display + 4, len(video) - 1)
        print(f"damage in frame {later} (compensation errors):")
        print(macroblock_error_map(clean[later], damaged[later]))
        print()

    importance = compute_importance(encoded.trace)
    print("VideoApp importance of the same frame (darker = more "
          "important):")
    print(importance_map(importance.values[target.coded_index],
                         encoded.trace.mb_cols))
    print(f"\nimportance range in this video: 1 .. "
          f"{importance.max_importance():.0f} macroblocks")


if __name__ == "__main__":
    main()
