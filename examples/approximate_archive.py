#!/usr/bin/env python
"""Video archive scenario: how much denser does VideoApp make storage?

Models the paper's motivating workload — a large archive of encoded
videos on dense MLC PCM — and compares the four designs of Figure 11 on
a suite of differently behaved clips:

* SLC: reliable single-level cells, no ECC (1 bit/cell);
* uniform: 8-level cells, BCH-16 on every bit (the safe MLC design);
* variable: 8-level cells, VideoApp's importance-matched ECC;
* ideal: 8-level cells, hypothetical free error correction.

Run:  python examples/approximate_archive.py
"""

import numpy as np

from repro.analysis import format_table
from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore
from repro.metrics import video_psnr
from repro.storage import ideal_density, slc_density, uniform_density
from repro.video import make_suite


def main() -> None:
    suite = make_suite(width=128, height=96, num_frames=18)
    store = ApproximateVideoStore(config=EncoderConfig(crf=23, gop_size=9))
    rng = np.random.default_rng(11)

    rows = []
    totals = {"slc": 0.0, "uniform": 0.0, "variable": 0.0, "ideal": 0.0}
    pixels = 0
    for name, video in suite:
        stored = store.put(video)
        report = stored.density()
        bits = report.payload_bits + report.header_bits
        clean = store.reconstruct(stored)
        damaged = store.read(stored, rng=rng)
        loss = video_psnr(video, clean) - video_psnr(video, damaged)
        rows.append((
            name,
            f"{bits}",
            f"{report.cells_per_pixel:.4f}",
            f"{100 * report.ecc_overhead:.1f}%",
            f"{max(loss, 0.0):.3f} dB",
        ))
        totals["slc"] += slc_density(bits, video.total_pixels).cells
        totals["uniform"] += uniform_density(bits, video.total_pixels).cells
        totals["variable"] += report.cells
        totals["ideal"] += ideal_density(bits, video.total_pixels).cells
        pixels += video.total_pixels

    print(format_table(
        ("clip", "bits", "cells/pixel", "ECC overhead", "quality cost"),
        rows, title="Archive stored with VideoApp variable correction"))
    print()
    print(format_table(("design", "cells/pixel", "density vs SLC"), [
        (design, f"{cells / pixels:.4f}",
         f"{totals['slc'] / cells:.2f}x")
        for design, cells in totals.items()
    ], title="Design comparison over the whole archive (Figure 11)"))
    saved = 1 - ((totals["variable"] - totals["ideal"])
                 / (totals["uniform"] - totals["ideal"]))
    print(f"\nVideoApp eliminates {100 * saved:.0f}% of the ECC overhead "
          f"(paper: 47%) and stores the archive in "
          f"{100 * totals['variable'] / totals['uniform']:.1f}% of the "
          f"uniform design's cells.")


if __name__ == "__main__":
    main()
