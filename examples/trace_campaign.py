#!/usr/bin/env python
"""A traced Monte Carlo campaign: where does the time actually go?

Runs a tiny Figure-9-style experiment — encode a synthetic clip,
compute VideoApp importances, split the payload into equal-storage
importance bins, and sweep error rates over the least and most
important bins — with span tracing enabled end to end
(see docs/OBSERVABILITY.md). Then:

* prints the **top 5 slowest stages** by total recorded time, with
  call counts — the answer a Chrome-trace viewer would give, from the
  terminal;
* writes ``trace_campaign.json``, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev, covering encode, injection, ECC, decode,
  and quality-metric spans.

Run:  python examples/trace_campaign.py
"""

from collections import defaultdict

import numpy as np

from repro.analysis import equal_storage_bins, quality_sweep
from repro.codec import Decoder, Encoder, EncoderConfig
from repro.core import compute_importance, macroblock_bits
from repro.obs import trace
from repro.obs.trace import write_chrome_trace
from repro.storage.device import ApproximateDevice
from repro.storage.ecc import scheme_by_name
from repro.video import SceneConfig, synthesize_scene

RATES = (1e-5, 1e-4, 1e-3)
RUNS = 3


def main() -> None:
    tracer = trace.enable()

    with trace.span("example.trace_campaign"):
        # One exact BCH round trip, so the trace has an ECC yardstick
        # (quality sweeps inject into payload bits and skip the BCH
        # machinery entirely).
        with trace.span("ecc.calibration"):
            device = ApproximateDevice(rng=np.random.default_rng(0),
                                       exact=True)
            device.store_and_read(bytes(range(64)),
                                  scheme_by_name("BCH-6"))

        video = synthesize_scene(SceneConfig(
            width=64, height=48, num_frames=6, seed=5, num_objects=2))
        config = EncoderConfig(crf=26, gop_size=6)
        encoded = Encoder(config).encode(video)
        clean = Decoder().decode(encoded)
        importance = compute_importance(encoded.trace)
        bins = equal_storage_bins(
            macroblock_bits(encoded.trace, importance), num_bins=4)

        # Figure 9's question, in miniature: the least important bin
        # should tolerate orders of magnitude more errors than the most
        # important one.
        for which, bin_ in (("least", bins[0]), ("most", bins[-1])):
            result = quality_sweep(
                encoded, video, clean, bin_.ranges, rates=RATES,
                runs=RUNS, rng=np.random.default_rng(42))
            losses = ", ".join(
                f"{p.rate:.0e}: {p.max_loss_db:5.2f} dB"
                for p in result.points)
            print(f"{which:>5} important bin "
                  f"(log2 imp {np.log2(max(bin_.max_importance, 1)):.1f})"
                  f" max loss  {losses}")

    records = tracer.drain()
    write_chrome_trace("trace_campaign.json", records)

    totals = defaultdict(float)
    counts = defaultdict(int)
    for record in records:
        totals[record.name] += record.duration
        counts[record.name] += record.attrs.get("count", 1)
    print(f"\n{len(records)} spans recorded; top 5 stages by total time:")
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:5]
    for rank, (name, seconds) in enumerate(ranked, start=1):
        print(f"  {rank}. {name:<22} {seconds * 1000:9.1f} ms "
              f"({counts[name]} calls)")
    print("\nwrote trace_campaign.json — load in chrome://tracing "
          "or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
