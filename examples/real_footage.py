#!/usr/bin/env python
"""Processing real footage: the .y4m ingestion path.

The paper evaluates on Xiph.Org ``.y4m`` sequences. This example shows
the adoption path for real files: it writes a (synthetic) clip out as a
standard YUV4MPEG2 file — exactly what you would download from
https://media.xiph.org/video/derf/ — then runs the full analyze/store
pipeline on the file, as you would with actual footage:

    python examples/real_footage.py [path/to/your.y4m]

With no argument it generates its own demo .y4m first.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import format_table, importance_map
from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore
from repro.metrics import video_psnr
from repro.video import SceneConfig, read_y4m, synthesize_scene, write_y4m


def _demo_file(directory: Path) -> Path:
    video = synthesize_scene(SceneConfig(width=128, height=96,
                                         num_frames=18, seed=12,
                                         num_objects=3,
                                         pan_speed=(1.0, 0.0)))
    path = directory / "demo.y4m"
    write_y4m(path, video)
    print(f"(no input given; wrote a demo clip to {path})")
    return path


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = _demo_file(Path(tempfile.mkdtemp()))

    video = read_y4m(path)
    print(f"loaded {path}: {len(video)} frames "
          f"{video.width}x{video.height} @ {video.fps:.2f} fps "
          f"(luma plane)")

    store = ApproximateVideoStore(config=EncoderConfig(crf=24, gop_size=9))
    stored = store.put(video)
    report = stored.density()
    clean = store.reconstruct(stored)
    damaged = store.read(stored, rng=np.random.default_rng(2))
    print(format_table(("metric", "value"), [
        ("payload bits", report.payload_bits),
        ("cells/pixel", f"{report.cells_per_pixel:.4f}"),
        ("ECC overhead", f"{100 * report.ecc_overhead:.1f}%"),
        ("PSNR clean", f"{video_psnr(video, clean):.2f} dB"),
        ("PSNR after approximate storage",
         f"{video_psnr(video, damaged):.2f} dB"),
    ], title="approximate storage report"))

    first_p = next(f for f in stored.protected.encoded.trace.frames
                   if f.coded_index == 1)
    print("\nimportance layout of the first P-frame "
          "(darker = more important):")
    print(importance_map(
        stored.importance.values[first_p.coded_index],
        stored.protected.encoded.trace.mb_cols))


if __name__ == "__main__":
    main()
