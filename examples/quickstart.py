#!/usr/bin/env python
"""Quickstart: approximate video storage in ~40 lines.

Encodes a synthetic clip with the H.264-like codec, runs VideoApp's
importance analysis, stores the partitioned streams on the simulated
MLC PCM device with variable error correction (the paper's Table 1),
reads the video back with storage errors, and reports quality + density.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore
from repro.metrics import video_psnr
from repro.video import SceneConfig, synthesize_scene


def main() -> None:
    # A synthetic 30-frame clip with moving objects (stands in for raw
    # camera footage; see repro.video.io to load your own REPROYUV files).
    video = synthesize_scene(SceneConfig(
        width=128, height=96, num_frames=24, seed=7, num_objects=3))

    # The store wires the whole paper together: encoder + VideoApp
    # analysis + stream partitioning + MLC/BCH storage simulation.
    store = ApproximateVideoStore(config=EncoderConfig(crf=24, gop_size=12))

    stored = store.put(video)
    importance = stored.importance
    print(f"encoded {len(video)} frames, "
          f"{stored.protected.encoded.payload_bits} payload bits")
    print(f"macroblock importance spans 1 .. "
          f"{importance.max_importance():.0f} macroblocks")
    print("reliability streams:",
          {name: f"{bits} bits"
           for name, bits in sorted(stored.protected.stream_bits.items())})

    report = stored.density()
    print(f"density: {report.cells_per_pixel:.4f} cells/pixel "
          f"({report.pixels_per_cell:.2f} pixels/cell), "
          f"ECC overhead {100 * report.ecc_overhead:.1f}% "
          f"(uniform correction would pay 31.3%)")

    clean = store.reconstruct(stored)
    damaged = store.read(stored, rng=np.random.default_rng(1))
    print(f"quality vs raw: clean {video_psnr(video, clean):.2f} dB, "
          f"after approximate storage {video_psnr(video, damaged):.2f} dB")
    print(f"quality cost of approximation: "
          f"{video_psnr(clean, damaged):.1f} dB PSNR against the clean "
          f"decode (100 = identical)")


if __name__ == "__main__":
    main()
