#!/usr/bin/env python
"""DRM scenario: encrypted approximate video storage (Section 5).

A streaming service wants its archived videos both encrypted (DRM /
privacy) and approximately stored (density). This example:

1. scores each AES mode against the paper's three requirements,
2. shows why CBC is unusable: one stored-bit flip costs ~129 plaintext
   bits after decryption,
3. runs the full encrypted pipeline with CTR and verifies the video
   survives storage errors exactly as well as an unencrypted one.

Run:  python examples/encrypted_storage.py
"""

import numpy as np

from repro.analysis import format_table
from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore
from repro.crypto import CBC, CTR, StreamEncryptor, analyze_all_modes
from repro.metrics import video_psnr
from repro.storage import MLCCellModel
from repro.video import SceneConfig, synthesize_scene

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
MASTER_IV = bytes.fromhex("f0e0d0c0b0a090807060504030201000")


def mode_scorecard() -> None:
    verdicts = analyze_all_modes()
    print(format_table(
        ("mode", "privacy", "bounded", "transparent", "compatible",
         "bits damaged / flip"),
        [(name, v.privacy, v.bounded_propagation,
          v.approximation_transparent, v.compatible,
          f"{v.propagation.amplification:.1f}")
         for name, v in verdicts.items()],
        title="AES modes vs the paper's three requirements"))


def cbc_vs_ctr_demo() -> None:
    plaintext = bytes(64)
    flipped_bit = 5
    rows = []
    for name, mode_cls in (("CBC", CBC), ("CTR", CTR)):
        ciphertext = mode_cls(KEY, MASTER_IV[:16]).encrypt(plaintext)
        corrupted = bytearray(ciphertext)
        corrupted[flipped_bit // 8] ^= 0x80 >> (flipped_bit % 8)
        decrypted = mode_cls(KEY, MASTER_IV[:16]).decrypt(bytes(corrupted))
        damage = sum(bin(a ^ b).count("1")
                     for a, b in zip(decrypted, plaintext))
        rows.append((name, damage))
    print()
    print(format_table(("mode", "plaintext bits damaged by 1 stored flip"),
                       rows, title="Why approximate storage needs CTR/OFB"))


def encrypted_pipeline() -> None:
    video = synthesize_scene(SceneConfig(width=128, height=96,
                                         num_frames=18, seed=3,
                                         num_objects=3))
    # A deliberately noisy substrate so storage errors actually land.
    cells = MLCCellModel(write_sigma=0.05)
    config = EncoderConfig(crf=24, gop_size=9)
    plain_store = ApproximateVideoStore(config=config, cell_model=cells)
    cipher_store = ApproximateVideoStore(
        config=config, cell_model=cells,
        encryptor=StreamEncryptor(key=KEY, master_iv=MASTER_IV, mode="CTR"))

    plain = plain_store.put(video)
    cipher = cipher_store.put(video)
    out_plain = plain_store.read(plain, rng=np.random.default_rng(4))
    out_cipher = cipher_store.read(cipher, rng=np.random.default_rng(4))
    print()
    print(format_table(("pipeline", "PSNR vs raw (dB)"), [
        ("approximate, plaintext", f"{video_psnr(video, out_plain):.3f}"),
        ("approximate, CTR-encrypted",
         f"{video_psnr(video, out_cipher):.3f}"),
    ], title="Requirement #3 end to end (identical noise, same quality)"))
    identical = all(np.array_equal(a, b)
                    for a, b in zip(out_plain, out_cipher))
    print(f"decoded outputs bit-identical: {identical}")


def main() -> None:
    mode_scorecard()
    cbc_vs_ctr_demo()
    encrypted_pipeline()


if __name__ == "__main__":
    main()
